//! Declarative sweep specifications and their resolution.
//!
//! A sweep spec is a small TOML-subset document describing a
//! `configs × trials` grid — the unit of work the service accepts:
//!
//! ```toml
//! # 4 configs × 4 trials, the ci_smoke grid.
//! name = "ci-smoke"
//! trials = 4
//! seed = 1994
//! scale = 20000
//! sampling = 8
//! components = "user"
//! workloads = ["espresso", "mpeg_play"]
//! cache_kb = [1, 4]
//! ```
//!
//! [`SweepPlan::resolve`] parses and validates the text and expands the
//! cross product `workloads × sizes` (workload-major) into the exact
//! [`SystemConfig`] vector a direct [`run_sweep_resilient`] caller
//! would build, so the service's committed values are bit-identical to
//! the library path's.
//!
//! The parser is hand-rolled — the workspace builds offline with no
//! serde/toml — and accepts only what the format needs: `key = value`
//! lines, `#` comments, integers, booleans, quoted strings, and flat
//! arrays of integers or strings.
//!
//! [`run_sweep_resilient`]: tapeworm_sim::run_sweep_resilient

use std::fmt;

use tapeworm_core::{CacheConfig, TlbSimConfig};
use tapeworm_sim::{
    planned_sweep_fingerprint, sweep_fingerprint, AllocPolicy, ComponentSet, CostKind, PlanMode,
    PlannerConfig, SystemConfig,
};
use tapeworm_stats::seed::SeedSeq;
use tapeworm_workload::Workload;

/// Version tag folded into every spec fingerprint, so a format change
/// can never alias a cache entry from an older server.
pub const SPEC_VERSION: &str = "tapeworm-sweep-spec-v1";

/// A spec that failed to parse or validate, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    line: usize,
    message: String,
}

impl SpecError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        SpecError {
            line,
            message: message.into(),
        }
    }

    fn global(message: impl Into<String>) -> Self {
        SpecError::new(0, message)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "spec error: {}", self.message)
        } else {
            write!(f, "spec error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

/// The model axis of a spec: which geometry parameter is swept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelAxis {
    /// Instruction-cache sweep over total sizes in KiB (`cache_kb`).
    Cache(Vec<u64>),
    /// TLB sweep over entry counts (`tlb_entries`), fully associative.
    Tlb(Vec<u64>),
}

/// A parsed, validated sweep specification (the declarative form).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Job name; restricted to `[A-Za-z0-9_.-]` so it can appear in
    /// file names and JSON without escaping.
    pub name: String,
    /// Trials per configuration (≥ 1).
    pub trials: usize,
    /// Base seed for the whole sweep.
    pub seed: u64,
    /// Instruction-scale divisor applied to every config.
    pub scale: u64,
    /// Set-sampling denominator (1 = no sampling).
    pub sampling: u64,
    /// Measured component set.
    pub components: ComponentSet,
    /// Workloads, in spec order (the outer cross-product axis).
    pub workloads: Vec<Workload>,
    /// Swept model geometry (the inner cross-product axis).
    pub axis: ModelAxis,
    /// Cache line size in bytes (cache axis only).
    pub line_bytes: u64,
    /// Cache associativity (cache axis only).
    pub assoc: u32,
    /// Frame allocation policy.
    pub alloc: AllocPolicy,
    /// Miss-handler cost model.
    pub cost: CostKind,
    /// Whether the resident-run fast path is enabled.
    pub fast_path: bool,
    /// Sweep execution plan: `full` (ground truth everywhere, the
    /// default) or `pruned` (model-guided planner). The `TW_PLAN`
    /// environment knob overrides this at run time.
    pub plan: PlanMode,
    /// Relative CI half-width bound for the planner's early stop
    /// (`pruned` only; `0.0` disables early stopping).
    pub ci_bound: f64,
}

/// One raw `key = value` right-hand side.
enum Value {
    Int(u64),
    Float(f64),
    Bool(bool),
    Str(String),
    IntList(Vec<u64>),
    StrList(Vec<String>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Str(_) => "string",
            Value::IntList(_) => "integer array",
            Value::StrList(_) => "string array",
        }
    }
}

/// Strips a trailing `#` comment that sits outside any string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar(raw: &str, lineno: usize) -> Result<Value, SpecError> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(SpecError::new(lineno, "unterminated string"));
        };
        if inner.contains('"') {
            return Err(SpecError::new(lineno, "stray quote inside string"));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(v) = raw.parse::<u64>() {
        return Ok(Value::Int(v));
    }
    // Floats must carry a decimal point, so `inf`/`nan` spellings and
    // negative integers stay rejected.
    if raw.contains('.') {
        if let Ok(v) = raw.parse::<f64>() {
            if v.is_finite() && v >= 0.0 {
                return Ok(Value::Float(v));
            }
        }
    }
    Err(SpecError::new(
        lineno,
        format!("unrecognised value `{raw}`"),
    ))
}

fn parse_value(raw: &str, lineno: usize) -> Result<Value, SpecError> {
    let raw = raw.trim();
    let Some(rest) = raw.strip_prefix('[') else {
        return parse_scalar(raw, lineno);
    };
    let Some(inner) = rest.strip_suffix(']') else {
        return Err(SpecError::new(lineno, "unterminated array"));
    };
    let items: Vec<&str> = inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if items.is_empty() {
        return Err(SpecError::new(lineno, "empty array"));
    }
    let mut ints = Vec::new();
    let mut strs = Vec::new();
    for item in &items {
        match parse_scalar(item, lineno)? {
            Value::Int(v) => ints.push(v),
            Value::Str(s) => strs.push(s),
            other => {
                return Err(SpecError::new(
                    lineno,
                    format!(
                        "array items must be integers or strings, got {}",
                        other.kind()
                    ),
                ))
            }
        }
    }
    if !ints.is_empty() && !strs.is_empty() {
        return Err(SpecError::new(lineno, "mixed array element types"));
    }
    if ints.is_empty() {
        Ok(Value::StrList(strs))
    } else {
        Ok(Value::IntList(ints))
    }
}

fn workload_by_name(name: &str, lineno: usize) -> Result<Workload, SpecError> {
    Workload::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| {
            SpecError::new(
                lineno,
                format!(
                    "unknown workload `{name}` (expected one of: {})",
                    Workload::ALL.map(Workload::name).join(", ")
                ),
            )
        })
}

impl SweepSpec {
    /// Parses and validates a spec document.
    ///
    /// # Errors
    ///
    /// Returns the first parse or validation failure, with its line
    /// number where one applies.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut name: Option<(String, usize)> = None;
        let mut trials: Option<u64> = None;
        let mut seed: u64 = 1994;
        let mut scale: u64 = 100;
        let mut sampling: u64 = 1;
        let mut components = ComponentSet::all();
        let mut workloads: Option<(Vec<Workload>, usize)> = None;
        let mut cache_kb: Option<Vec<u64>> = None;
        let mut tlb_entries: Option<Vec<u64>> = None;
        let mut line_bytes: u64 = 16;
        let mut assoc: u64 = 1;
        let mut alloc = AllocPolicy::default();
        let mut cost = CostKind::default();
        let mut fast_path = true;
        let mut plan = PlanMode::Full;
        let mut ci_bound = PlannerConfig::default().ci_bound;
        let mut seen: Vec<String> = Vec::new();

        for (i, raw_line) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, raw_value)) = line.split_once('=') else {
                return Err(SpecError::new(lineno, "expected `key = value`"));
            };
            let key = key.trim();
            if seen.iter().any(|k| k == key) {
                return Err(SpecError::new(lineno, format!("duplicate key `{key}`")));
            }
            seen.push(key.to_string());
            let value = parse_value(raw_value, lineno)?;

            let type_err = |v: &Value, want: &str| {
                SpecError::new(lineno, format!("`{key}` must be {want}, got {}", v.kind()))
            };
            match key {
                "name" => match value {
                    Value::Str(s) => name = Some((s, lineno)),
                    v => return Err(type_err(&v, "a string")),
                },
                "trials" => match value {
                    Value::Int(v) => trials = Some(v),
                    v => return Err(type_err(&v, "an integer")),
                },
                "seed" => match value {
                    Value::Int(v) => seed = v,
                    v => return Err(type_err(&v, "an integer")),
                },
                "scale" => match value {
                    Value::Int(v) if v > 0 => scale = v,
                    Value::Int(_) => return Err(SpecError::new(lineno, "`scale` must be ≥ 1")),
                    v => return Err(type_err(&v, "an integer")),
                },
                "sampling" => match value {
                    Value::Int(v) if v.is_power_of_two() => sampling = v,
                    Value::Int(_) => {
                        return Err(SpecError::new(lineno, "`sampling` must be a power of two"))
                    }
                    v => return Err(type_err(&v, "an integer")),
                },
                "components" => match value {
                    Value::Str(s) => {
                        components = match s.as_str() {
                            "all" => ComponentSet::all(),
                            "user" => ComponentSet::user_only(),
                            "kernel" => ComponentSet::kernel_only(),
                            "servers" => ComponentSet::servers_only(),
                            other => {
                                return Err(SpecError::new(
                                    lineno,
                                    format!(
                                        "unknown component set `{other}` \
                                         (expected all, user, kernel, or servers)"
                                    ),
                                ))
                            }
                        }
                    }
                    v => return Err(type_err(&v, "a string")),
                },
                "workloads" => match value {
                    Value::StrList(names) => {
                        let mut ws = Vec::with_capacity(names.len());
                        for n in &names {
                            ws.push(workload_by_name(n, lineno)?);
                        }
                        workloads = Some((ws, lineno));
                    }
                    v => return Err(type_err(&v, "a string array")),
                },
                "cache_kb" => match value {
                    Value::IntList(v) => cache_kb = Some(v),
                    v => return Err(type_err(&v, "an integer array")),
                },
                "tlb_entries" => match value {
                    Value::IntList(v) => tlb_entries = Some(v),
                    v => return Err(type_err(&v, "an integer array")),
                },
                "line_bytes" => match value {
                    Value::Int(v) => line_bytes = v,
                    v => return Err(type_err(&v, "an integer")),
                },
                "assoc" => match value {
                    Value::Int(v) => assoc = v,
                    v => return Err(type_err(&v, "an integer")),
                },
                "alloc" => match value {
                    Value::Str(s) => {
                        alloc = match s.as_str() {
                            "random" => AllocPolicy::Random,
                            "sequential" => AllocPolicy::Sequential,
                            other => match other.strip_prefix("coloring:") {
                                Some(bits) => {
                                    AllocPolicy::Coloring(bits.parse::<u64>().map_err(|_| {
                                        SpecError::new(lineno, "bad coloring bit count")
                                    })?)
                                }
                                None => {
                                    return Err(SpecError::new(
                                        lineno,
                                        format!(
                                            "unknown alloc policy `{other}` (expected \
                                             random, sequential, or coloring:<bits>)"
                                        ),
                                    ))
                                }
                            },
                        }
                    }
                    v => return Err(type_err(&v, "a string")),
                },
                "cost" => match value {
                    Value::Str(s) => {
                        cost = match s.as_str() {
                            "optimized" => CostKind::Optimized,
                            "unoptimized_c" => CostKind::UnoptimizedC,
                            "hardware_assisted" => CostKind::HardwareAssisted,
                            other => {
                                return Err(SpecError::new(
                                    lineno,
                                    format!(
                                        "unknown cost model `{other}` (expected optimized, \
                                         unoptimized_c, or hardware_assisted)"
                                    ),
                                ))
                            }
                        }
                    }
                    v => return Err(type_err(&v, "a string")),
                },
                "fast_path" => match value {
                    Value::Bool(v) => fast_path = v,
                    v => return Err(type_err(&v, "a boolean")),
                },
                "plan" => match value {
                    Value::Str(s) => {
                        plan = match s.as_str() {
                            "full" => PlanMode::Full,
                            "pruned" => PlanMode::Pruned,
                            other => {
                                return Err(SpecError::new(
                                    lineno,
                                    format!("unknown plan `{other}` (expected full or pruned)"),
                                ))
                            }
                        }
                    }
                    v => return Err(type_err(&v, "a string")),
                },
                "ci_bound" => match value {
                    Value::Float(v) if v < 1.0 => ci_bound = v,
                    Value::Int(0) => ci_bound = 0.0,
                    Value::Float(_) | Value::Int(_) => {
                        return Err(SpecError::new(
                            lineno,
                            "`ci_bound` must be in [0, 1) — a relative CI half-width",
                        ))
                    }
                    v => return Err(type_err(&v, "a number")),
                },
                other => {
                    return Err(SpecError::new(lineno, format!("unknown key `{other}`")));
                }
            }
        }

        let (name, name_line) = name.ok_or_else(|| SpecError::global("missing key `name`"))?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
        {
            return Err(SpecError::new(
                name_line,
                "`name` must be non-empty and use only [A-Za-z0-9_.-]",
            ));
        }
        let trials = trials.ok_or_else(|| SpecError::global("missing key `trials`"))?;
        if trials == 0 {
            return Err(SpecError::global("`trials` must be ≥ 1"));
        }
        let (workloads, _) =
            workloads.ok_or_else(|| SpecError::global("missing key `workloads`"))?;
        let axis = match (cache_kb, tlb_entries) {
            (Some(kb), None) => ModelAxis::Cache(kb),
            (None, Some(entries)) => ModelAxis::Tlb(entries),
            (Some(_), Some(_)) => {
                return Err(SpecError::global(
                    "`cache_kb` and `tlb_entries` are mutually exclusive",
                ))
            }
            (None, None) => {
                return Err(SpecError::global(
                    "missing model axis: set `cache_kb` or `tlb_entries`",
                ))
            }
        };

        Ok(SweepSpec {
            name,
            trials: trials as usize,
            seed,
            scale,
            sampling,
            components,
            workloads,
            axis,
            line_bytes,
            assoc: u32::try_from(assoc).map_err(|_| SpecError::global("`assoc` out of range"))?,
            alloc,
            cost,
            fast_path,
            plan,
            ci_bound,
        })
    }
}

/// A resolved sweep: the spec plus its expanded [`SystemConfig`] grid
/// and the original source text (re-sent verbatim to out-of-process
/// workers so both sides resolve the identical plan).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    spec: SweepSpec,
    configs: Vec<SystemConfig>,
    source: String,
}

impl SweepPlan {
    /// Parses, validates and expands a spec document into a runnable
    /// plan.
    ///
    /// # Errors
    ///
    /// Returns the first parse, validation, or geometry failure.
    pub fn resolve(text: &str) -> Result<Self, SpecError> {
        let spec = SweepSpec::parse(text)?;
        let mut configs = Vec::with_capacity(spec.workloads.len() * spec.axis_len());
        for &workload in &spec.workloads {
            match &spec.axis {
                ModelAxis::Cache(kbs) => {
                    for &kb in kbs {
                        let bytes = kb.checked_mul(1024).ok_or_else(|| {
                            SpecError::global(format!("cache size {kb} KiB overflows"))
                        })?;
                        let cache = CacheConfig::new(bytes, spec.line_bytes, spec.assoc)
                            .map_err(|e| SpecError::global(format!("bad cache geometry: {e}")))?;
                        configs.push(spec.apply(SystemConfig::cache(workload, cache)));
                    }
                }
                ModelAxis::Tlb(entry_counts) => {
                    for &entries in entry_counts {
                        let entries = u32::try_from(entries)
                            .ok()
                            .filter(|e| e.is_power_of_two())
                            .ok_or_else(|| {
                                SpecError::global(format!(
                                    "`tlb_entries` value {entries} must be a power of two"
                                ))
                            })?;
                        let tlb = TlbSimConfig {
                            entries,
                            associativity: entries,
                            ..TlbSimConfig::r3000()
                        };
                        configs.push(spec.apply(SystemConfig::tlb(workload, tlb)));
                    }
                }
            }
        }
        Ok(SweepPlan {
            spec,
            configs,
            source: text.to_string(),
        })
    }

    /// The validated spec.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// The expanded configuration grid, workload-major.
    pub fn configs(&self) -> &[SystemConfig] {
        &self.configs
    }

    /// The original spec text this plan was resolved from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Trials per configuration.
    pub fn trials(&self) -> usize {
        self.spec.trials
    }

    /// The sweep's base seed sequence.
    pub fn base(&self) -> SeedSeq {
        SeedSeq::new(self.spec.seed)
    }

    /// Total `(config, trial)` cells.
    pub fn total(&self) -> usize {
        self.configs.len() * self.spec.trials
    }

    /// The engine-level sweep identity — the same
    /// [`sweep_fingerprint`] the checkpoint store keys on, so service
    /// checkpoints are interchangeable with direct-engine ones.
    pub fn sweep_id(&self) -> u64 {
        sweep_fingerprint(&self.configs, self.spec.trials, self.base())
    }

    /// The planner configuration the spec asks for (before the
    /// `TW_PLAN` environment override).
    pub fn planner_config(&self) -> PlannerConfig {
        PlannerConfig {
            mode: self.spec.plan,
            ci_bound: self.spec.ci_bound,
            ..PlannerConfig::default()
        }
    }

    /// The service-level fingerprint: the planner-aware engine identity
    /// ([`planned_sweep_fingerprint`], which folds in the spec's plan
    /// mode and CI bound) extended with the spec format version and job
    /// name. This is the fingerprint cache key; because the mode is
    /// part of it, a pruned run can never be served from the cache for
    /// a `full` request or vice versa.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint_as(self.spec.plan)
    }

    /// [`Self::fingerprint`] with the plan mode forced — the key the
    /// service uses after resolving the `TW_PLAN` override, so the
    /// cache is keyed on what actually ran, not what the spec asked
    /// for.
    pub fn fingerprint_as(&self, mode: PlanMode) -> u64 {
        let planner = PlannerConfig {
            mode,
            ..self.planner_config()
        };
        let engine_id =
            planned_sweep_fingerprint(&self.configs, self.spec.trials, self.base(), &planner);
        fnv1a(format!("{SPEC_VERSION}|{}|{engine_id:016x}", self.spec.name).as_bytes())
    }
}

impl SweepSpec {
    fn axis_len(&self) -> usize {
        match &self.axis {
            ModelAxis::Cache(v) => v.len(),
            ModelAxis::Tlb(v) => v.len(),
        }
    }

    /// Applies the non-axis knobs to a freshly built config.
    fn apply(&self, config: SystemConfig) -> SystemConfig {
        let mut config = config
            .with_components(self.components)
            .with_sampling(self.sampling)
            .with_scale(self.scale)
            .with_alloc(self.alloc)
            .with_fast_path(self.fast_path);
        config.cost = self.cost;
        config
    }
}

/// FNV-1a, the workspace's standard fingerprint hash.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
        # exercise every key once
        name = "demo-1"
        trials = 3
        seed = 7
        scale = 500           # instruction divisor
        sampling = 4
        components = "user"
        workloads = ["espresso", "mpeg_play"]
        cache_kb = [1, 4, 16]
        line_bytes = 32
        assoc = 2
        alloc = "coloring:2"
        cost = "unoptimized_c"
        fast_path = false
    "#;

    #[test]
    fn full_spec_parses_and_expands_workload_major() {
        let plan = SweepPlan::resolve(SPEC).unwrap();
        assert_eq!(plan.configs().len(), 6);
        assert_eq!(plan.trials(), 3);
        assert_eq!(plan.total(), 18);
        assert_eq!(plan.base().value(), SeedSeq::new(7).value());
        // Workload-major: espresso × {1,4,16}K then mpeg_play × the same.
        let expect = |w, kb| {
            SweepPlan::resolve(&format!(
                "name = \"x\"\ntrials = 3\nseed = 7\nscale = 500\nsampling = 4\n\
                 components = \"user\"\nworkloads = [\"{w}\"]\ncache_kb = [{kb}]\n\
                 line_bytes = 32\nassoc = 2\nalloc = \"coloring:2\"\n\
                 cost = \"unoptimized_c\"\nfast_path = false\n"
            ))
            .unwrap()
            .configs()[0]
                .clone()
        };
        assert_eq!(plan.configs()[0], expect("espresso", 1));
        assert_eq!(plan.configs()[2], expect("espresso", 16));
        assert_eq!(plan.configs()[3], expect("mpeg_play", 1));
        let cfg = &plan.configs()[0];
        assert_eq!(cfg.scale, 500);
        assert_eq!(cfg.sample_denominator, 4);
        assert_eq!(cfg.cost, CostKind::UnoptimizedC);
        assert_eq!(cfg.alloc, AllocPolicy::Coloring(2));
        assert!(!cfg.fast_path);
    }

    #[test]
    fn defaults_match_library_defaults() {
        let plan = SweepPlan::resolve(
            "name = \"d\"\ntrials = 1\nworkloads = [\"xlisp\"]\ncache_kb = [4]\n",
        )
        .unwrap();
        let direct = SystemConfig::cache(Workload::Xlisp, CacheConfig::new(4096, 16, 1).unwrap());
        assert_eq!(plan.configs(), &[direct]);
        assert_eq!(plan.spec().seed, 1994);
    }

    #[test]
    fn tlb_axis_builds_fully_associative_r3000_variants() {
        let plan = SweepPlan::resolve(
            "name = \"t\"\ntrials = 2\nworkloads = [\"sdet\"]\ntlb_entries = [32, 128]\n",
        )
        .unwrap();
        assert_eq!(plan.configs().len(), 2);
        let tlb = TlbSimConfig {
            entries: 32,
            associativity: 32,
            ..TlbSimConfig::r3000()
        };
        assert_eq!(plan.configs()[0], SystemConfig::tlb(Workload::Sdet, tlb));
    }

    #[test]
    fn errors_carry_line_numbers_and_reasons() {
        for (text, want) in [
            ("name = \"a\"\ntrials = 0\nworkloads = [\"sdet\"]\ncache_kb = [4]", "trials"),
            ("name = \"a\"\ntrials = 1\nworkloads = [\"nope\"]\ncache_kb = [4]", "nope"),
            ("name = \"a\"\ntrials = 1\nworkloads = [\"sdet\"]", "model axis"),
            ("name = \"a\"\ntrials = 1\nworkloads = [\"sdet\"]\ncache_kb = [3]", "geometry"),
            ("name = \"a\"\nname = \"b\"", "duplicate"),
            ("name = \"bad name\"\ntrials = 1", "A-Za-z0-9"),
            ("nonsense", "key = value"),
            ("mystery = 1", "unknown key"),
            (
                "name = \"a\"\ntrials = 1\nworkloads = [\"sdet\"]\ncache_kb = [4]\ntlb_entries = [8]",
                "mutually exclusive",
            ),
        ] {
            let err = SweepPlan::resolve(text).unwrap_err().to_string();
            assert!(err.contains(want), "`{want}` not in `{err}` for:\n{text}");
        }
        let err = SweepSpec::parse("name = \"a\"\n\ntrials = [1").unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn plan_and_ci_bound_round_trip_with_full_default() {
        // Omitted keys: the spec defaults to a full sweep with the
        // planner's default bound.
        let plan = SweepPlan::resolve(
            "name = \"d\"\ntrials = 1\nworkloads = [\"sdet\"]\ncache_kb = [4]\n",
        )
        .unwrap();
        assert_eq!(plan.spec().plan, PlanMode::Full);
        assert_eq!(plan.spec().ci_bound, PlannerConfig::default().ci_bound);
        assert_eq!(plan.planner_config().mode, PlanMode::Full);
        // Explicit keys round-trip into the PlannerConfig.
        let pruned = SweepPlan::resolve(
            "name = \"d\"\ntrials = 1\nworkloads = [\"sdet\"]\ncache_kb = [4]\n\
             plan = \"pruned\"\nci_bound = 0.125\n",
        )
        .unwrap();
        assert_eq!(pruned.spec().plan, PlanMode::Pruned);
        assert_eq!(pruned.spec().ci_bound, 0.125);
        let cfg = pruned.planner_config();
        assert_eq!(cfg.mode, PlanMode::Pruned);
        assert_eq!(cfg.ci_bound, 0.125);
        assert_eq!(cfg.min_trials, PlannerConfig::default().min_trials);
        // ci_bound = 0 (integer spelling) disables early stopping.
        let zero = SweepPlan::resolve(
            "name = \"d\"\ntrials = 1\nworkloads = [\"sdet\"]\ncache_kb = [4]\nci_bound = 0\n",
        )
        .unwrap();
        assert_eq!(zero.spec().ci_bound, 0.0);
    }

    #[test]
    fn plan_and_ci_bound_reject_bad_values_with_line_numbers() {
        let base = "name = \"a\"\ntrials = 1\nworkloads = [\"sdet\"]\ncache_kb = [4]\n";
        for (tail, want) in [
            ("plan = \"adaptive\"\n", "unknown plan `adaptive`"),
            ("plan = 3\n", "`plan` must be a string"),
            ("ci_bound = 1.5\n", "must be in [0, 1)"),
            ("ci_bound = 2\n", "must be in [0, 1)"),
            ("ci_bound = \"tight\"\n", "`ci_bound` must be a number"),
            ("ci_bound = -0.5\n", "unrecognised value"),
            ("ci_bound = [0.1]\n", "got float"),
        ] {
            let err = SweepPlan::resolve(&format!("{base}{tail}"))
                .unwrap_err()
                .to_string();
            assert!(err.contains(want), "`{want}` not in `{err}`");
            assert!(err.contains("line 5"), "line number missing in `{err}`");
        }
    }

    #[test]
    fn fingerprint_separates_plan_modes_and_bounds() {
        let base = "name = \"a\"\ntrials = 2\nworkloads = [\"sdet\"]\ncache_kb = [4]\n";
        let full = SweepPlan::resolve(base).unwrap();
        let pruned = SweepPlan::resolve(&format!("{base}plan = \"pruned\"\n")).unwrap();
        // Same engine identity (checkpoints are mode-agnostic ground
        // truth) but distinct service cache keys.
        assert_eq!(full.sweep_id(), pruned.sweep_id());
        assert_ne!(full.fingerprint(), pruned.fingerprint());
        // The CI bound moves the pruned key but not the full one.
        let loose =
            SweepPlan::resolve(&format!("{base}plan = \"pruned\"\nci_bound = 0.25\n")).unwrap();
        assert_ne!(pruned.fingerprint(), loose.fingerprint());
        let full_loose = SweepPlan::resolve(&format!("{base}ci_bound = 0.25\n")).unwrap();
        assert_eq!(full.fingerprint(), full_loose.fingerprint());
        // fingerprint_as maps each plan onto the other mode's key.
        assert_eq!(full.fingerprint_as(PlanMode::Pruned), pruned.fingerprint());
        assert_eq!(pruned.fingerprint_as(PlanMode::Full), full.fingerprint());
    }

    #[test]
    fn fingerprint_extends_sweep_id_with_name() {
        let a = SweepPlan::resolve(
            "name = \"a\"\ntrials = 2\nworkloads = [\"sdet\"]\ncache_kb = [4]\n",
        )
        .unwrap();
        let b = SweepPlan::resolve(
            "name = \"b\"\ntrials = 2\nworkloads = [\"sdet\"]\ncache_kb = [4]\n",
        )
        .unwrap();
        // A rename keeps the engine identity (checkpoints survive) but
        // moves the cache key.
        assert_eq!(a.sweep_id(), b.sweep_id());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Comments and whitespace change neither.
        let c = SweepPlan::resolve(
            "# hi\nname = \"a\"\n\ntrials = 2\nworkloads = [\"sdet\"]  \ncache_kb = [4]\n",
        )
        .unwrap();
        assert_eq!(a.fingerprint(), c.fingerprint());
    }
}
