//! The length-prefixed JSON wire protocol between the service and
//! out-of-process workers.
//!
//! Frames are a big-endian `u32` byte length followed by one UTF-8
//! JSON object. Strings that must survive the trip bit-exactly — spec
//! text, checkpoint record lines, error messages — travel hex-encoded,
//! sidestepping JSON string escaping entirely (the workspace has no
//! serde; field extraction is the same minimal scanner the checkpoint
//! codec uses).
//!
//! Conversation (`tapeworm-worker-wire-v1`):
//!
//! ```text
//! → {"op": "plan", "spec": "<hex spec text>", "ring": N}
//! ← {"ok": "plan", "fingerprint": "<16 hex digits>", "total": N}
//! → {"op": "run", "index": K, "attempt": A}
//! ← {"ok": "run", "index": K, "line": "<hex checkpoint record>"}
//! ←  or {"err": "<hex message>"}        typed failure (retryable)
//! → {"op": "shutdown"}
//! ← {"ok": "shutdown"}
//! ```
//!
//! Transport loss (EOF, short frame, I/O error) is the worker-death
//! signal; the backend respawns and replays, mirroring the in-process
//! scheduler's panic containment.

use std::io::{self, Read, Write};

/// Protocol identifier (checked implicitly via the handshake).
pub const WIRE_PROTOCOL: &str = "tapeworm-worker-wire-v1";

/// Upper bound on a frame's payload; anything larger is corruption.
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Writes one frame and flushes.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on clean EOF at a frame
/// boundary (the peer closed the conversation).
///
/// # Errors
///
/// Propagates I/O failures; a mid-frame EOF, oversized length, or
/// non-UTF-8 payload is an error, not a clean close.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds protocol maximum",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Extracts the raw value of a top-level `"key": value` field from a
/// single-line JSON object. Values are either quoted strings (returned
/// without quotes) or bare tokens up to the next `,` or `}`.
pub fn field<'a>(msg: &'a str, key: &str) -> Option<&'a str> {
    let pattern = format!("\"{key}\":");
    let start = msg.find(&pattern)? + pattern.len();
    let rest = msg[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// [`field`] parsed as a decimal integer.
pub fn field_usize(msg: &str, key: &str) -> Option<usize> {
    field(msg, key)?.parse().ok()
}

/// Hex-encodes arbitrary text for safe embedding in a JSON string.
pub fn hex_encode(text: &str) -> String {
    let mut out = String::with_capacity(text.len() * 2);
    for b in text.bytes() {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Inverse of [`hex_encode`]; `None` on odd length, bad digits, or
/// non-UTF-8 decoded bytes.
pub fn hex_decode(hex: &str) -> Option<String> {
    if hex.len() % 2 != 0 {
        return None;
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    for chunk in hex.as_bytes().chunks(2) {
        let hi = (chunk[0] as char).to_digit(16)?;
        let lo = (chunk[1] as char).to_digit(16)?;
        bytes.push((hi * 16 + lo) as u8);
    }
    String::from_utf8(bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_eof_is_clean_at_boundaries() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\": \"plan\"}").unwrap();
        write_frame(&mut buf, "{\"op\": \"run\", \"index\": 3}").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "{\"op\": \"plan\"}");
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap(),
            "{\"op\": \"run\", \"index\": 3}"
        );
        assert_eq!(read_frame(&mut r).unwrap(), None);
        // A truncated frame is an error, not a clean close.
        let mut short = &buf[..6];
        assert!(read_frame(&mut short).is_err());
        // An absurd length is rejected before allocation.
        let mut bad = &[0xff, 0xff, 0xff, 0xff][..];
        assert!(read_frame(&mut bad).is_err());
    }

    #[test]
    fn field_extracts_strings_and_bare_tokens() {
        let msg = "{\"op\": \"run\", \"index\": 42, \"attempt\": 0, \"line\": \"abc\"}";
        assert_eq!(field(msg, "op"), Some("run"));
        assert_eq!(field_usize(msg, "index"), Some(42));
        assert_eq!(field_usize(msg, "attempt"), Some(0));
        assert_eq!(field(msg, "line"), Some("abc"));
        assert_eq!(field(msg, "missing"), None);
    }

    #[test]
    fn hex_round_trips_hostile_text() {
        for text in [
            "",
            "plain",
            "with \"quotes\" and \\slashes\\",
            "newline\nand \u{1F980}",
        ] {
            assert_eq!(hex_decode(&hex_encode(text)).as_deref(), Some(text));
        }
        assert_eq!(hex_decode("abc"), None);
        assert_eq!(hex_decode("zz"), None);
    }
}
