//! The JSONL run sink and the service result digest.
//!
//! Every completed job streams to `result.jsonl`
//! (`tapeworm-server-run-v1`): a header line with the job's identity
//! and provenance (including the `from_cache` tag), one line per trial
//! carrying the bit-exact `tapeworm-checkpoint-v1` record, one
//! `tapeworm-metrics-v1` line per configuration with the merged
//! counters/phases/dilation block, and a digest footer.
//!
//! The digest is the service's determinism pin: FNV-1a over the
//! frozen-v1 checkpoint record lines (`encode_outcome_digest_v1(i, o)`
//! + `\n` for every cell, in index order). Because every backend
//! funnels its outcomes through the same codec, the digest is
//! bit-identical across backends, thread counts, checkpoint resume,
//! and cached-vs-fresh serving — and independent of presentation
//! details like the job ID in the header and of counters appended to
//! the registry after the digest encoding was frozen.

use std::io;
use std::path::Path;

use tapeworm_obs::{metrics_json_fields, write_atomic, METRICS_SCHEMA};
use tapeworm_sim::{
    encode_outcome, encode_outcome_digest_v1, PlannedCell, PlannedOutcome, TrialOutcome,
    TrialSummary,
};

use crate::spec::fnv1a;

/// Schema identifier stamped into every run-sink header.
pub const RUN_SCHEMA: &str = "tapeworm-server-run-v1";

/// Provenance fields for a sink header line.
#[derive(Debug, Clone)]
pub struct SinkHeader<'a> {
    /// Queue job ID rendered as the job directory name.
    pub job: &'a str,
    /// Spec name.
    pub spec: &'a str,
    /// Service-level fingerprint (the cache key).
    pub fingerprint: u64,
    /// Backend that produced the outcomes (`"cache"` for a hit).
    pub backend: &'a str,
    /// Whether the outcomes were served from the fingerprint cache.
    pub from_cache: bool,
    /// Worker threads requested (presentation only; never affects the
    /// digest).
    pub threads: usize,
    /// Configurations in the grid.
    pub configs: usize,
    /// Trials per configuration.
    pub trials: usize,
    /// Effective execution plan (`"full"` or `"pruned"`, after the
    /// `TW_PLAN` override).
    pub plan: &'a str,
}

/// The deterministic service digest over an outcome vector. Hashes the
/// *frozen* v1 record encoding (`encode_outcome_digest_v1`: the first
/// fifteen counter slots, the registry size when the golden digest was
/// pinned) so counters appended to the live registry widen the
/// rendered trial records without moving any pinned digest.
pub fn digest_outcomes(outcomes: &[TrialOutcome]) -> u64 {
    let mut doc = String::new();
    for (index, outcome) in outcomes.iter().enumerate() {
        doc.push_str(&encode_outcome_digest_v1(index, outcome));
        doc.push('\n');
    }
    fnv1a(doc.as_bytes())
}

/// The deterministic digest over explicitly indexed outcomes — the
/// pruned-sweep counterpart of [`digest_outcomes`], hashing exactly the
/// trap-simulated (ground-truth) cells at their true global indices.
/// Interpolated estimates never reach this function, so they can never
/// be folded into a digest as ground truth. On a full index cover this
/// equals [`digest_outcomes`] bit for bit.
pub fn digest_indexed_outcomes(outcomes: &[(usize, TrialOutcome)]) -> u64 {
    let mut doc = String::new();
    for (index, outcome) in outcomes {
        doc.push_str(&encode_outcome_digest_v1(*index, outcome));
        doc.push('\n');
    }
    fnv1a(doc.as_bytes())
}

fn header_line(header: &SinkHeader<'_>) -> String {
    format!(
        "{{\"schema\": \"{RUN_SCHEMA}\", \"job\": \"{}\", \"spec\": \"{}\", \
         \"fingerprint\": \"0x{:016x}\", \"backend\": \"{}\", \"from_cache\": {}, \
         \"threads\": {}, \"configs\": {}, \"trials\": {}, \"plan\": \"{}\"}}\n",
        header.job,
        header.spec,
        header.fingerprint,
        header.backend,
        header.from_cache,
        header.threads,
        header.configs,
        header.trials,
        header.plan,
    )
}

fn trial_line(index: usize, trials: usize, outcome: &TrialOutcome) -> String {
    let record = encode_outcome(index, outcome);
    // Splice the config/trial coordinates ahead of the canonical
    // record fields: `{"index": ...}` → `{"record": "trial",
    // "config": c, "trial": t, "index": ...}`. Pruned sinks reuse this
    // verbatim, so a pruned trial line is bit-identical to the full
    // sink's line at the same global index.
    format!(
        "{{\"record\": \"trial\", \"config\": {}, \"trial\": {}, {}\n",
        index / trials,
        index % trials,
        &record[1..],
    )
}

/// Renders the full `tapeworm-server-run-v1` document, returning it
/// with its digest.
pub fn render(
    header: &SinkHeader<'_>,
    outcomes: &[TrialOutcome],
    cells: &[TrialSummary],
    failed: usize,
) -> (String, u64) {
    let digest = digest_outcomes(outcomes);
    let mut out = String::with_capacity(256 * (outcomes.len() + cells.len() + 2));
    out.push_str(&header_line(header));
    let trials = header.trials.max(1);
    for (index, outcome) in outcomes.iter().enumerate() {
        out.push_str(&trial_line(index, trials, outcome));
    }
    for (config, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "{{\"record\": \"metrics\", \"schema\": \"{METRICS_SCHEMA}\", \"config\": {config}, \
             \"trials\": {}, {}}}\n",
            cell.results().len(),
            metrics_json_fields(cell.metrics()),
        ));
    }
    out.push_str(&format!(
        "{{\"record\": \"digest\", \"committed\": {}, \"failed\": {failed}, \
         \"digest\": \"0x{digest:016x}\"}}\n",
        outcomes.len(),
    ));
    (out, digest)
}

/// Renders and atomically writes the sink, returning the digest.
///
/// # Errors
///
/// Propagates the atomic-write failure.
pub fn write(
    path: &Path,
    header: &SinkHeader<'_>,
    outcomes: &[TrialOutcome],
    cells: &[TrialSummary],
    failed: usize,
) -> io::Result<u64> {
    let (doc, digest) = render(header, outcomes, cells, failed);
    write_atomic(path, doc.as_bytes())?;
    Ok(digest)
}

/// Renders a pruned (planner-driven) run document. Trial lines are
/// emitted only for trap-simulated cells, bit-identical to the full
/// sink's lines at the same global indices; every configuration gets a
/// `cell` record carrying its provenance (`estimated: true` plus the
/// model fields for interpolated cells); metrics lines cover simulated
/// cells only; a `planner` record carries the sweep-level counters; and
/// the digest footer hashes exactly the simulated outcomes
/// ([`digest_indexed_outcomes`]) — an estimate can never enter the
/// digest.
pub fn render_planned(header: &SinkHeader<'_>, outcome: &PlannedOutcome) -> (String, u64) {
    let simulated = outcome.simulated_outcomes();
    let digest = digest_indexed_outcomes(simulated);
    let trials = header.trials.max(1);
    let mut out = String::with_capacity(256 * (simulated.len() + 2 * outcome.cells().len() + 3));
    out.push_str(&header_line(header));
    for (index, o) in simulated {
        out.push_str(&trial_line(*index, trials, o));
    }
    for (config, cell) in outcome.cells().iter().enumerate() {
        match cell {
            PlannedCell::Simulated {
                summary,
                trials_run,
                early_stop,
            } => {
                let ci = match early_stop {
                    Some(ci) => format!(
                        ", \"ci_half_width\": {}, \"ci_confidence\": {}",
                        ci.half_width, ci.confidence
                    ),
                    None => String::new(),
                };
                out.push_str(&format!(
                    "{{\"record\": \"cell\", \"config\": {config}, \
                     \"provenance\": \"simulated\", \"estimated\": false, \
                     \"trials_run\": {trials_run}, \"early_stop\": {}{ci}, \
                     \"misses_mean\": {}}}\n",
                    early_stop.is_some(),
                    summary.misses().mean(),
                ));
            }
            PlannedCell::Interpolated(e) => {
                out.push_str(&format!(
                    "{{\"record\": \"cell\", \"config\": {config}, \
                     \"provenance\": \"interpolated\", \"estimated\": true, \
                     \"model\": \"kessler-v1\", \"left\": {}, \"right\": {}, \
                     \"misses_mean\": {}, \"slowdown_mean\": {}, \"miss_bound\": {}, \
                     \"conflict_probability\": {}}}\n",
                    e.left, e.right, e.misses, e.slowdown, e.miss_bound, e.conflict_probability,
                ));
            }
        }
    }
    for (config, cell) in outcome.cells().iter().enumerate() {
        if let PlannedCell::Simulated { summary, .. } = cell {
            out.push_str(&format!(
                "{{\"record\": \"metrics\", \"schema\": \"{METRICS_SCHEMA}\", \
                 \"config\": {config}, \"trials\": {}, \"provenance\": \"simulated\", \
                 \"estimated\": false, {}}}\n",
                summary.results().len(),
                metrics_json_fields(summary.metrics()),
            ));
        }
    }
    out.push_str(&format!(
        "{{\"record\": \"planner\", \"plan\": \"{}\", \"cells_simulated\": {}, \
         \"cells_interpolated\": {}, \"trials_saved\": {}, \"ci_early_stops\": {}}}\n",
        outcome.mode().name(),
        outcome.cells_simulated(),
        outcome.cells_interpolated(),
        outcome.trials_saved(),
        outcome.ci_early_stops(),
    ));
    out.push_str(&format!(
        "{{\"record\": \"digest\", \"committed\": {}, \"failed\": {}, \
         \"digest\": \"0x{digest:016x}\"}}\n",
        simulated.len(),
        outcome.failed().len(),
    ));
    (out, digest)
}

/// Renders and atomically writes a pruned run sink, returning the
/// digest over the simulated outcomes.
///
/// # Errors
///
/// Propagates the atomic-write failure.
pub fn write_planned(
    path: &Path,
    header: &SinkHeader<'_>,
    outcome: &PlannedOutcome,
) -> io::Result<u64> {
    let (doc, digest) = render_planned(header, outcome);
    write_atomic(path, doc.as_bytes())?;
    Ok(digest)
}

/// Extracts the digest from a rendered sink document (the footer's
/// `digest` field), for gates that only have the file.
pub fn read_digest(doc: &str) -> Option<u64> {
    let line = doc
        .lines()
        .rev()
        .find(|l| l.contains("\"record\": \"digest\""))?;
    let hex = crate::wire::field(line, "digest")?.strip_prefix("0x")?;
    u64::from_str_radix(hex, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendOptions, InProcessBackend, WorkerBackend};
    use crate::spec::SweepPlan;
    use tapeworm_sim::fold_outcomes;

    const SPEC: &str = "name = \"sink-demo\"\ntrials = 2\nscale = 20000\n\
                        workloads = [\"eqntott\"]\ncache_kb = [1, 2]\n";

    #[test]
    fn sink_document_carries_schema_records_and_recoverable_digest() {
        let plan = SweepPlan::resolve(SPEC).unwrap();
        let run = InProcessBackend
            .run(&plan, &BackendOptions::default())
            .unwrap();
        let (cells, failed) = fold_outcomes(plan.trials(), run.outcomes.clone());
        let header = SinkHeader {
            job: "000001",
            spec: &plan.spec().name,
            fingerprint: plan.fingerprint(),
            backend: "in-process",
            from_cache: false,
            threads: 1,
            configs: plan.configs().len(),
            trials: plan.trials(),
            plan: "full",
        };
        let (doc, digest) = render(&header, &run.outcomes, &cells, failed.len());
        assert_eq!(digest, digest_outcomes(&run.outcomes));
        assert_eq!(read_digest(&doc), Some(digest));

        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 1 + plan.total() + plan.configs().len() + 1);
        assert!(lines[0].contains(&format!("\"schema\": \"{RUN_SCHEMA}\"")));
        assert!(lines[0].contains("\"from_cache\": false"));
        assert!(lines[1].contains("\"record\": \"trial\""));
        assert!(lines[1].contains("\"config\": 0, \"trial\": 0, \"index\": 0"));
        assert!(lines[2].contains("\"config\": 0, \"trial\": 1, \"index\": 1"));
        assert!(lines[3].contains("\"config\": 1, \"trial\": 0, \"index\": 2"));
        let metrics_line = lines[1 + plan.total()];
        for key in [
            "\"schema\": \"tapeworm-metrics-v1\"",
            "\"counters\"",
            "\"phases\"",
            "\"dilation\"",
            "\"slowdown\"",
            "\"trap_events\"",
        ] {
            assert!(
                metrics_line.contains(key),
                "missing {key} in {metrics_line}"
            );
        }
    }

    #[test]
    fn digest_ignores_presentation_but_pins_every_outcome_bit() {
        let plan = SweepPlan::resolve(SPEC).unwrap();
        let run = InProcessBackend
            .run(&plan, &BackendOptions::default())
            .unwrap();
        let (cells, _) = fold_outcomes(plan.trials(), run.outcomes.clone());
        let header_a = SinkHeader {
            job: "000001",
            spec: "sink-demo",
            fingerprint: plan.fingerprint(),
            backend: "in-process",
            from_cache: false,
            threads: 1,
            configs: 2,
            trials: 2,
            plan: "full",
        };
        let header_b = SinkHeader {
            job: "999999",
            backend: "cache",
            from_cache: true,
            threads: 8,
            ..header_a.clone()
        };
        let (_, a) = render(&header_a, &run.outcomes, &cells, 0);
        let (_, b) = render(&header_b, &run.outcomes, &cells, 0);
        assert_eq!(a, b, "presentation fields must not move the digest");

        // Any outcome bit moving moves the digest.
        let mut bent = run.outcomes.clone();
        if let Some(Ok((result, _))) = bent.first().cloned() {
            let mut metrics_bent = bent[0].clone().unwrap().1;
            metrics_bent.events_recorded += 1;
            bent[0] = Ok((result, metrics_bent));
        }
        assert_ne!(digest_outcomes(&run.outcomes), digest_outcomes(&bent));
    }
}
