//! Pluggable worker backends: how a claimed job's trials get computed.
//!
//! A backend turns a [`SweepPlan`] into the full index-ordered
//! [`TrialOutcome`] vector. Determinism is the contract: every backend
//! must produce outcomes bit-identical to what
//! [`run_sweep_resilient`](tapeworm_sim::run_sweep_resilient) would
//! commit, because the service folds and fingerprints them through the
//! same committer and codec.
//!
//! * [`InProcessBackend`] — the sweep engine itself: the
//!   `TrialScheduler` worker pool with retry, panic containment, and
//!   checkpoint/resume, teed through the engine's commit observer.
//! * [`SubprocessBackend`] — a worker subprocess (`tapeworm-server
//!   worker`) driven over the length-prefixed JSON protocol in
//!   [`wire`](crate::wire). The server resolves the identical plan on
//!   both sides (handshake-verified by fingerprint), requests one cell
//!   at a time, and mirrors the scheduler's fault semantics: typed
//!   errors retry with the engine's deterministic capped backoff
//!   accounting, worker death (EOF, I/O error, crash) counts as a
//!   contained panic and respawns the worker, and the committed prefix
//!   checkpoints through `tapeworm-checkpoint-v1` at the same cadence.

use std::fmt;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use tapeworm_sim::{
    decode_outcome, encode_outcome, load_outcomes, run_sweep_cell, run_sweep_resilient_observed,
    save_outcomes, CheckpointConfig, FailureKind, FaultStats, ObsConfig, RetryPolicy, SweepOptions,
    TrialFailure, TrialMetrics, TrialOutcome, TrialResult,
};

use crate::spec::SweepPlan;
use crate::wire::{field, field_usize, hex_decode, hex_encode, read_frame, write_frame};

/// Environment variable: the worker returns a typed error for this
/// cell index on attempt 0 (deterministic fault injection for tests).
pub const ENV_FAIL_INDEX: &str = "TW_WORKER_FAIL_INDEX";

/// Environment variable: the worker exits mid-protocol at this cell
/// index on attempt 0 (deterministic crash injection for tests).
pub const ENV_EXIT_INDEX: &str = "TW_WORKER_EXIT_INDEX";

/// Everything that shapes a backend run besides the plan itself.
#[derive(Debug, Clone)]
pub struct BackendOptions {
    /// Worker threads for backends with internal parallelism; `0`
    /// selects the host's available parallelism. Never affects
    /// committed values.
    pub threads: usize,
    /// Retry budget and deterministic backoff for faulted trials.
    pub retry: RetryPolicy,
    /// Per-trial observability configuration.
    pub obs: ObsConfig,
    /// Checkpoint file for crash-safe progress; `None` disables both
    /// checkpointing and resume.
    pub checkpoint: Option<PathBuf>,
    /// Commits between checkpoint rewrites.
    pub checkpoint_interval: usize,
}

impl Default for BackendOptions {
    fn default() -> Self {
        BackendOptions {
            threads: 0,
            retry: RetryPolicy::default(),
            obs: ObsConfig::default(),
            checkpoint: None,
            checkpoint_interval: 16,
        }
    }
}

/// A completed backend run: the full outcome vector plus accounting.
#[derive(Debug)]
pub struct BackendRun {
    /// One outcome per cell, index order `0..plan.total()`.
    pub outcomes: Vec<TrialOutcome>,
    /// Scheduler-equivalent fault accounting for the run.
    pub stats: FaultStats,
    /// Cells replayed from the checkpoint instead of recomputed.
    pub resumed: usize,
}

/// A backend failure that aborted the job (distinct from individual
/// trial failures, which degrade gracefully inside the outcome vector).
#[derive(Debug)]
pub enum BackendError {
    /// The worker process could not be spawned.
    Spawn(io::Error),
    /// The worker resolved a different plan than the server (version
    /// skew) or rejected the spec.
    Handshake(String),
    /// The conversation derailed unrecoverably (corrupt frame, wrong
    /// index, respawn failure).
    Protocol(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Spawn(e) => write!(f, "failed to spawn worker: {e}"),
            BackendError::Handshake(msg) => write!(f, "worker handshake failed: {msg}"),
            BackendError::Protocol(msg) => write!(f, "worker protocol error: {msg}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A strategy for computing a plan's trials.
pub trait WorkerBackend {
    /// Short name for reports and sink headers.
    fn name(&self) -> &'static str;

    /// Computes every cell of `plan`, in index order.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] only for failures that abort the
    /// whole job; per-trial failures live inside [`BackendRun`].
    fn run(&self, plan: &SweepPlan, opts: &BackendOptions) -> Result<BackendRun, BackendError>;
}

/// The sweep engine running in the server's own process.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcessBackend;

impl WorkerBackend for InProcessBackend {
    fn name(&self) -> &'static str {
        "in-process"
    }

    fn run(&self, plan: &SweepPlan, opts: &BackendOptions) -> Result<BackendRun, BackendError> {
        let mut options = SweepOptions::default()
            .with_threads(opts.threads)
            .with_retry(opts.retry)
            .with_obs(opts.obs);
        if let Some(path) = &opts.checkpoint {
            options = options.with_checkpoint(
                CheckpointConfig::new(path)
                    .with_interval(opts.checkpoint_interval)
                    .resuming(),
            );
        }
        let mut outcomes = Vec::with_capacity(plan.total());
        let outcome = run_sweep_resilient_observed(
            plan.configs(),
            plan.trials(),
            plan.base(),
            &options,
            |_, o| outcomes.push(o.clone()),
        );
        Ok(BackendRun {
            outcomes,
            stats: *outcome.fault_stats(),
            resumed: outcome.resumed_trials(),
        })
    }
}

/// A live worker subprocess with its stdio pipes.
struct Worker {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: std::process::ChildStdout,
}

impl Worker {
    fn request(&mut self, payload: &str) -> io::Result<String> {
        write_frame(&mut self.stdin, payload)?;
        read_frame(&mut self.stdout)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "worker closed mid-conversation",
            )
        })
    }

    fn shutdown(mut self) {
        let _ = write_frame(&mut self.stdin, "{\"op\": \"shutdown\"}");
        let _ = read_frame(&mut self.stdout);
        let _ = self.child.wait();
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A worker subprocess speaking the wire protocol over stdio.
#[derive(Debug, Clone)]
pub struct SubprocessBackend {
    program: PathBuf,
    args: Vec<String>,
    env: Vec<(String, String)>,
}

impl SubprocessBackend {
    /// A backend running `program args...` as the worker.
    pub fn new(program: impl Into<PathBuf>, args: Vec<String>) -> Self {
        SubprocessBackend {
            program: program.into(),
            args,
            env: Vec::new(),
        }
    }

    /// The default worker: this very binary re-invoked as
    /// `tapeworm-server worker`.
    ///
    /// # Errors
    ///
    /// Propagates the failure to resolve the current executable.
    pub fn current_exe() -> io::Result<Self> {
        Ok(SubprocessBackend::new(
            std::env::current_exe()?,
            vec!["worker".to_string()],
        ))
    }

    /// Adds an environment variable for spawned workers (used by tests
    /// to arm the worker's deterministic fault injection).
    #[must_use]
    pub fn with_env(mut self, key: &str, value: &str) -> Self {
        self.env.push((key.to_string(), value.to_string()));
        self
    }

    fn spawn(&self, plan: &SweepPlan, opts: &BackendOptions) -> Result<Worker, BackendError> {
        let mut cmd = Command::new(&self.program);
        cmd.args(&self.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        for (k, v) in &self.env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().map_err(BackendError::Spawn)?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut worker = Worker {
            child,
            stdin,
            stdout,
        };
        // Handshake: the worker resolves the same spec and must agree
        // on the plan's identity before any cell is computed.
        let hello = format!(
            "{{\"op\": \"plan\", \"spec\": \"{}\", \"ring\": {}}}",
            hex_encode(plan.source()),
            opts.obs.ring_capacity
        );
        let reply = worker
            .request(&hello)
            .map_err(|e| BackendError::Handshake(e.to_string()))?;
        if field(&reply, "ok") != Some("plan") {
            let msg = field(&reply, "err")
                .and_then(hex_decode)
                .unwrap_or_else(|| reply.clone());
            return Err(BackendError::Handshake(msg));
        }
        let fingerprint =
            field(&reply, "fingerprint").and_then(|h| u64::from_str_radix(h, 16).ok());
        if fingerprint != Some(plan.fingerprint())
            || field_usize(&reply, "total") != Some(plan.total())
        {
            return Err(BackendError::Handshake(format!(
                "worker resolved a different plan: {reply}"
            )));
        }
        Ok(worker)
    }

    /// One cell request. `Ok(Ok(..))` is a committed outcome,
    /// `Ok(Err(msg))` a typed (retryable) failure, `Err(..)` transport
    /// loss (the worker is dead).
    fn request_cell(
        worker: &mut Worker,
        index: usize,
        attempt: u32,
    ) -> io::Result<Result<(TrialResult, TrialMetrics), String>> {
        let reply = worker.request(&format!(
            "{{\"op\": \"run\", \"index\": {index}, \"attempt\": {attempt}}}"
        ))?;
        if let Some(err_hex) = field(&reply, "err") {
            let msg = hex_decode(err_hex).unwrap_or_else(|| "undecodable error".to_string());
            return Ok(Err(msg));
        }
        let decoded = field(&reply, "line")
            .and_then(hex_decode)
            .and_then(|line| decode_outcome(&line));
        match decoded {
            Some((i, Ok(cell))) if i == index => Ok(Ok(cell)),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed cell reply: {reply}"),
            )),
        }
    }
}

impl WorkerBackend for SubprocessBackend {
    fn name(&self) -> &'static str {
        "subprocess"
    }

    fn run(&self, plan: &SweepPlan, opts: &BackendOptions) -> Result<BackendRun, BackendError> {
        let total = plan.total();
        let max_attempts = opts.retry.max_attempts.max(1);
        let mut stats = FaultStats::default();

        // Resume the committed prefix, exactly like the engine: the
        // checkpoint is keyed by the engine-level sweep identity, so
        // prefixes written by either backend are interchangeable.
        let mut outcomes: Vec<TrialOutcome> = opts
            .checkpoint
            .as_deref()
            .and_then(|path| load_outcomes(path, plan.sweep_id(), total))
            .unwrap_or_default();
        outcomes.truncate(total);
        let resumed = outcomes.len();

        let mut worker = self.spawn(plan, opts)?;
        for index in resumed..total {
            // Mirror the scheduler's per-trial retry loop: typed errors
            // retry with deterministic capped backoff accounting; a
            // dead worker counts as a contained panic and is respawned.
            let mut attempt: u32 = 0;
            let mut typed: u32 = 0;
            let mut backoff: u64 = 0;
            let outcome = loop {
                match Self::request_cell(&mut worker, index, attempt) {
                    Ok(Ok(outcome)) => break Ok(outcome),
                    Ok(Err(msg)) => {
                        typed += 1;
                        if attempt + 1 >= max_attempts {
                            break Err(FailureKind::Error(msg));
                        }
                    }
                    Err(death) => {
                        stats.panics += 1;
                        stats.workers_respawned += 1;
                        drop(worker);
                        worker = self.spawn(plan, opts)?;
                        if attempt + 1 >= max_attempts {
                            break Err(FailureKind::Panic(format!("worker died: {death}")));
                        }
                    }
                }
                backoff += opts.retry.backoff_for(attempt);
                attempt += 1;
            };
            stats.retries += u64::from(attempt);
            stats.typed_failures += u64::from(typed);
            stats.backoff_units += backoff;
            stats.trials_computed += 1;
            let outcome = outcome.map_err(|kind| {
                stats.failed_trials += 1;
                TrialFailure {
                    index,
                    attempts: attempt + 1,
                    backoff_units: backoff,
                    kind,
                }
            });
            outcomes.push(outcome);
            if let Some(path) = &opts.checkpoint {
                let committed = outcomes.len();
                if committed < total && (committed - resumed) % opts.checkpoint_interval.max(1) == 0
                {
                    // Best-effort, like the engine: a failed write keeps
                    // the previous complete prefix.
                    let _ = save_outcomes(path, plan.sweep_id(), total, &outcomes);
                }
            }
        }
        worker.shutdown();
        if let Some(path) = &opts.checkpoint {
            let _ = std::fs::remove_file(path);
        }
        Ok(BackendRun {
            outcomes,
            stats,
            resumed,
        })
    }
}

/// The worker side of the wire protocol: serves `plan`/`run`/`shutdown`
/// requests over stdio until EOF. This is what `tapeworm-server worker`
/// runs.
///
/// Deterministic fault injection (for the service test suite only):
/// [`ENV_FAIL_INDEX`] makes the worker return a typed error for that
/// cell on attempt 0; [`ENV_EXIT_INDEX`] makes it exit mid-protocol
/// instead, simulating a crash. Both trigger once per process, so a
/// respawned worker completes the cell — mirroring the transient faults
/// the engine's chaos harness injects.
///
/// # Errors
///
/// Propagates stdio failures.
pub fn serve_worker() -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_worker_io(&mut stdin.lock(), &mut stdout.lock())
}

fn env_index(key: &str) -> Option<usize> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

fn serve_worker_io(r: &mut impl Read, w: &mut impl Write) -> io::Result<()> {
    let mut plan: Option<(SweepPlan, ObsConfig)> = None;
    let fail_index = env_index(ENV_FAIL_INDEX);
    let exit_index = env_index(ENV_EXIT_INDEX);

    let err_reply = |msg: &str| format!("{{\"err\": \"{}\"}}", hex_encode(msg));

    while let Some(msg) = read_frame(r)? {
        let reply = match field(&msg, "op") {
            Some("plan") => {
                let spec = field(&msg, "spec").and_then(hex_decode);
                let ring = field_usize(&msg, "ring").unwrap_or(0);
                match spec.as_deref().map(SweepPlan::resolve) {
                    Some(Ok(resolved)) => {
                        let reply = format!(
                            "{{\"ok\": \"plan\", \"fingerprint\": \"{:016x}\", \"total\": {}}}",
                            resolved.fingerprint(),
                            resolved.total()
                        );
                        plan = Some((
                            resolved,
                            ObsConfig {
                                ring_capacity: ring,
                            },
                        ));
                        reply
                    }
                    Some(Err(e)) => err_reply(&e.to_string()),
                    None => err_reply("plan request carries no decodable spec"),
                }
            }
            Some("run") => match (
                &plan,
                field_usize(&msg, "index"),
                field_usize(&msg, "attempt"),
            ) {
                (Some((plan, obs)), Some(index), Some(attempt)) if index < plan.total() => {
                    if attempt == 0 && exit_index == Some(index) {
                        // Injected crash: die without a reply, exactly
                        // like a panic tearing down the process.
                        std::process::exit(17);
                    }
                    if attempt == 0 && fail_index == Some(index) {
                        err_reply("injected worker fault")
                    } else {
                        match run_sweep_cell(
                            plan.configs(),
                            plan.trials(),
                            plan.base(),
                            index,
                            *obs,
                        ) {
                            Ok(cell) => format!(
                                "{{\"ok\": \"run\", \"index\": {index}, \"line\": \"{}\"}}",
                                hex_encode(&encode_outcome(index, &Ok(cell)))
                            ),
                            Err(msg) => err_reply(&msg),
                        }
                    }
                }
                (None, _, _) => err_reply("no plan loaded"),
                _ => err_reply("malformed run request"),
            },
            Some("shutdown") => {
                write_frame(w, "{\"ok\": \"shutdown\"}")?;
                break;
            }
            _ => err_reply("unknown op"),
        };
        write_frame(w, &reply)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "name = \"wire-demo\"\ntrials = 2\nscale = 20000\n\
                        workloads = [\"espresso\"]\ncache_kb = [1]\n";

    /// Drives the worker loop in-memory: no subprocess needed to pin
    /// the protocol and the cell bit-exactness.
    #[test]
    fn worker_loop_serves_cells_bit_identical_to_the_engine() {
        let plan = SweepPlan::resolve(SPEC).unwrap();
        let mut requests = Vec::new();
        write_frame(
            &mut requests,
            &format!(
                "{{\"op\": \"plan\", \"spec\": \"{}\", \"ring\": 0}}",
                hex_encode(SPEC)
            ),
        )
        .unwrap();
        for index in 0..plan.total() {
            write_frame(
                &mut requests,
                &format!("{{\"op\": \"run\", \"index\": {index}, \"attempt\": 0}}"),
            )
            .unwrap();
        }
        write_frame(&mut requests, "{\"op\": \"shutdown\"}").unwrap();

        let mut replies = Vec::new();
        serve_worker_io(&mut requests.as_slice(), &mut replies).unwrap();

        let mut r = replies.as_slice();
        let hello = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(
            field(&hello, "fingerprint"),
            Some(format!("{:016x}", plan.fingerprint()).as_str())
        );
        for index in 0..plan.total() {
            let reply = read_frame(&mut r).unwrap().unwrap();
            let line = hex_decode(field(&reply, "line").unwrap()).unwrap();
            let (i, outcome) = decode_outcome(&line).unwrap();
            assert_eq!(i, index);
            let direct = run_sweep_cell(
                plan.configs(),
                plan.trials(),
                plan.base(),
                index,
                ObsConfig::default(),
            )
            .unwrap();
            assert_eq!(outcome, Ok(direct), "cell {index} drifted");
        }
        let bye = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(field(&bye, "ok"), Some("shutdown"));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn worker_rejects_bad_requests_without_dying() {
        let mut requests = Vec::new();
        write_frame(
            &mut requests,
            "{\"op\": \"run\", \"index\": 0, \"attempt\": 0}",
        )
        .unwrap();
        write_frame(&mut requests, "{\"op\": \"plan\", \"spec\": \"zz\"}").unwrap();
        write_frame(&mut requests, "{\"op\": \"dance\"}").unwrap();
        let mut replies = Vec::new();
        serve_worker_io(&mut requests.as_slice(), &mut replies).unwrap();
        let mut r = replies.as_slice();
        for want in ["no plan loaded", "no decodable spec", "unknown op"] {
            let reply = read_frame(&mut r).unwrap().unwrap();
            let msg = hex_decode(field(&reply, "err").unwrap()).unwrap();
            assert!(msg.contains(want), "`{want}` not in `{msg}`");
        }
    }

    #[test]
    fn in_process_backend_matches_direct_engine() {
        let plan = SweepPlan::resolve(SPEC).unwrap();
        let run = InProcessBackend
            .run(&plan, &BackendOptions::default())
            .unwrap();
        assert_eq!(run.outcomes.len(), plan.total());
        assert_eq!(run.stats.trials_computed, plan.total() as u64);
        assert!(run.stats.is_clean());
        for (index, outcome) in run.outcomes.iter().enumerate() {
            let direct = run_sweep_cell(
                plan.configs(),
                plan.trials(),
                plan.base(),
                index,
                ObsConfig::default(),
            )
            .unwrap();
            assert_eq!(outcome, &Ok(direct));
        }
    }
}
