//! Sweep-as-a-service for the Tapeworm II reproduction.
//!
//! The bench binaries run sweeps as one-shot library calls; this crate
//! turns the same deterministic engine into a small service with a
//! persistent work queue, so long experiment campaigns can be
//! submitted declaratively, survive crashes, and never recompute a
//! sweep the service has already committed:
//!
//! * [`SweepSpec`] / [`SweepPlan`] — the declarative TOML-subset spec
//!   format and its resolution into the exact `configs × trials` grid
//!   a direct [`run_sweep_resilient`] caller would build.
//! * [`JobQueue`] — a directory-backed FIFO with crash-safe atomic
//!   state transitions and per-job `tapeworm-checkpoint-v1`
//!   checkpointing; a killed worker's job resumes from its committed
//!   prefix.
//! * [`WorkerBackend`] — pluggable execution: [`InProcessBackend`]
//!   (the engine's worker pool) and [`SubprocessBackend`] (a worker
//!   process driven over a length-prefixed JSON stdio protocol, with
//!   the scheduler's typed-error retry, deterministic capped backoff
//!   and worker-respawn semantics mirrored at the process level).
//! * [`SweepService`] — the job lifecycle: fingerprint-cache lookup,
//!   backend dispatch, the engine-committer fold, the JSONL run sink,
//!   and the deterministic service digest that is bit-identical across
//!   backends, thread counts, and cached-vs-fresh serving.
//!
//! [`run_sweep_resilient`]: tapeworm_sim::run_sweep_resilient

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod backend;
pub mod queue;
pub mod sink;
pub mod spec;
pub mod wire;

mod service;

pub use backend::{
    serve_worker, BackendError, BackendOptions, BackendRun, InProcessBackend, SubprocessBackend,
    WorkerBackend, ENV_EXIT_INDEX, ENV_FAIL_INDEX,
};
pub use queue::{JobId, JobQueue, JobState};
pub use service::{JobReport, ServiceError, ServiceOptions, SweepService};
pub use sink::{
    digest_indexed_outcomes, digest_outcomes, read_digest, render_planned, SinkHeader, RUN_SCHEMA,
};
pub use spec::{ModelAxis, SpecError, SweepPlan, SweepSpec, SPEC_VERSION};
pub use tapeworm_sim::{
    FaultStats, ObsConfig, PlanMode, PlannerConfig, RetryPolicy, TrialOutcome, TrialSummary,
};
