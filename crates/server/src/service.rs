//! The sweep service: ties queue, backends, fingerprint cache and run
//! sink into the job lifecycle.
//!
//! `submit → running → done/failed`: a submitted spec is validated up
//! front, claimed FIFO, and served either from the fingerprint cache
//! (an identical spec already ran to full success — zero trials enter
//! any scheduler) or by a [`WorkerBackend`]. Either way the outcome
//! vector funnels through [`fold_outcomes`] — the engine's own
//! committer — and the canonical-record digest, so for a fixed spec the
//! `result.jsonl` digest is bit-identical across backends, thread
//! counts, crash/resume histories, and cached-vs-fresh serving.
//!
//! The cache stores complete, fully-successful runs only (a run with
//! failed trials is never cached — a retry should recompute, not
//! replay the failure), as `tapeworm-checkpoint-v1` documents keyed by
//! the service fingerprint.

use std::fmt;
use std::io;
use std::path::PathBuf;

use tapeworm_sim::{
    fold_outcomes, load_outcomes, run_sweep_planned, save_outcomes, FaultStats, ObsConfig,
    PlanMode, PlannedCell, PlannerConfig, RetryPolicy, SweepOptions, TrialOutcome, TrialSummary,
};

use crate::backend::{BackendError, BackendOptions, BackendRun, WorkerBackend};
use crate::queue::{JobId, JobQueue, JobState};
use crate::sink::{self, SinkHeader};
use crate::spec::{SpecError, SweepPlan};

/// Service-wide knobs (per-job options derive from these).
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Worker threads for in-process backends; `0` = host parallelism.
    pub threads: usize,
    /// Retry budget for faulted trials.
    pub retry: RetryPolicy,
    /// Per-trial observability configuration.
    pub obs: ObsConfig,
    /// Whether the fingerprint cache is consulted and populated.
    pub cache: bool,
    /// Commits between checkpoint rewrites while a job runs.
    pub checkpoint_interval: usize,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            threads: 0,
            retry: RetryPolicy::default(),
            obs: ObsConfig::default(),
            cache: true,
            checkpoint_interval: 16,
        }
    }
}

/// What the service did for one job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job.
    pub job: JobId,
    /// Spec name.
    pub spec: String,
    /// Backend name, or `"cache"` for a fingerprint-cache hit.
    pub backend: String,
    /// Service-level fingerprint of the resolved plan.
    pub fingerprint: u64,
    /// The deterministic result digest.
    pub digest: u64,
    /// Whether the job was served from the fingerprint cache.
    pub from_cache: bool,
    /// Trials replayed from a checkpoint.
    pub resumed_trials: usize,
    /// Scheduler-equivalent fault accounting (all-zero for a cache
    /// hit, including `trials_computed`).
    pub stats: FaultStats,
    /// Trials that exhausted their retry budget.
    pub failed_trials: usize,
    /// Per-configuration summaries, through the engine's committer.
    /// For a pruned job these cover the trap-simulated configurations
    /// only, in config order; the sink's `cell` records carry the full
    /// per-config provenance.
    pub cells: Vec<TrialSummary>,
    /// Where `result.jsonl` was written.
    pub sink_path: PathBuf,
    /// Effective execution plan (`"full"` or `"pruned"`, after the
    /// `TW_PLAN` override).
    pub plan: &'static str,
    /// Cells the planner ran through the simulator.
    pub cells_simulated: u64,
    /// Cells the planner backfilled from the model (always 0 for
    /// `full`).
    pub cells_interpolated: u64,
    /// Trap-simulated trials avoided versus a full sweep.
    pub trials_saved: u64,
    /// Simulated cells stopped early on a tight CI.
    pub ci_early_stops: u64,
}

/// A failure that aborted a job (its state becomes `failed`).
#[derive(Debug)]
pub enum ServiceError {
    /// Filesystem trouble in the queue or sink.
    Io(io::Error),
    /// The spec failed to parse, validate, or expand.
    Spec(SpecError),
    /// The backend aborted the run.
    Backend(BackendError),
    /// No such job.
    UnknownJob(JobId),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "queue I/O error: {e}"),
            ServiceError::Spec(e) => write!(f, "{e}"),
            ServiceError::Backend(e) => write!(f, "{e}"),
            ServiceError::UnknownJob(id) => write!(f, "no such job: {id}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

/// A queue bound to service options — the object the CLI drives.
#[derive(Debug, Clone)]
pub struct SweepService {
    queue: JobQueue,
    options: ServiceOptions,
}

impl SweepService {
    /// Opens (creating if needed) the service state under `root`.
    ///
    /// # Errors
    ///
    /// Propagates queue-creation failures.
    pub fn open(root: impl Into<PathBuf>, options: ServiceOptions) -> io::Result<Self> {
        Ok(SweepService {
            queue: JobQueue::open(root)?,
            options,
        })
    }

    /// The underlying queue.
    pub fn queue(&self) -> &JobQueue {
        &self.queue
    }

    /// Where a plan's cache entry lives.
    fn cache_path(&self, fingerprint: u64) -> PathBuf {
        self.queue
            .root()
            .join("cache")
            .join(format!("sweep-{fingerprint:016x}.json"))
    }

    /// Validates and enqueues a spec, returning its job ID. Rejected
    /// specs never enter the queue.
    ///
    /// # Errors
    ///
    /// Returns the spec's first validation failure, or queue I/O
    /// trouble.
    pub fn submit(&self, spec_text: &str) -> Result<JobId, ServiceError> {
        SweepPlan::resolve(spec_text).map_err(ServiceError::Spec)?;
        Ok(self.queue.submit(spec_text)?)
    }

    /// Runs one job to completion through `backend` (or the cache),
    /// writing `result.jsonl`, `report.json`, and the terminal state.
    ///
    /// # Errors
    ///
    /// Any error marks the job `failed` (with the message recorded in
    /// `report.json`) and is returned.
    pub fn run_job(
        &self,
        id: JobId,
        backend: &dyn WorkerBackend,
    ) -> Result<JobReport, ServiceError> {
        match self.run_job_inner(id, backend) {
            Ok(report) => Ok(report),
            Err(e) => {
                if self.queue.state(id).ok().flatten().is_some() {
                    let _ = self.queue.set_state(id, JobState::Failed);
                    let _ = tapeworm_obs::write_atomic(
                        &self.queue.report_path(id),
                        format!(
                            "{{\"job\": \"{id:06}\", \"error\": \"{}\"}}\n",
                            escape(&e.to_string())
                        )
                        .as_bytes(),
                    );
                }
                Err(e)
            }
        }
    }

    fn run_job_inner(
        &self,
        id: JobId,
        backend: &dyn WorkerBackend,
    ) -> Result<JobReport, ServiceError> {
        if self.queue.state(id)?.is_none() {
            return Err(ServiceError::UnknownJob(id));
        }
        let spec_text = self.queue.spec_text(id)?;
        let plan = SweepPlan::resolve(&spec_text).map_err(ServiceError::Spec)?;
        self.queue.set_state(id, JobState::Running)?;

        // The effective mode (spec `plan` after the `TW_PLAN` override)
        // decides both the execution path and the cache key, so a
        // pruned result can never be served for a full request or vice
        // versa — and pruned runs skip the fingerprint cache entirely.
        let planner = plan.planner_config().resolve_env();
        if planner.mode == PlanMode::Pruned {
            return self.run_job_pruned(id, &plan, &planner);
        }

        let fingerprint = plan.fingerprint_as(PlanMode::Full);
        let cached: Option<Vec<TrialOutcome>> = if self.options.cache {
            load_outcomes(&self.cache_path(fingerprint), fingerprint, plan.total())
        } else {
            None
        };
        let from_cache = cached.is_some();
        let run = match cached {
            Some(outcomes) => BackendRun {
                outcomes,
                stats: FaultStats::default(),
                resumed: 0,
            },
            None => {
                let opts = BackendOptions {
                    threads: self.options.threads,
                    retry: self.options.retry,
                    obs: self.options.obs,
                    checkpoint: Some(self.queue.checkpoint_path(id)),
                    checkpoint_interval: self.options.checkpoint_interval,
                };
                backend.run(&plan, &opts).map_err(ServiceError::Backend)?
            }
        };

        let (cells, failed) = fold_outcomes(plan.trials(), run.outcomes.clone());
        let backend_name = if from_cache { "cache" } else { backend.name() };
        let header = SinkHeader {
            job: &format!("{id:06}"),
            spec: &plan.spec().name,
            fingerprint,
            backend: backend_name,
            from_cache,
            threads: self.options.threads,
            configs: plan.configs().len(),
            trials: plan.trials(),
            plan: "full",
        };
        let sink_path = self.queue.sink_path(id);
        let digest = sink::write(&sink_path, &header, &run.outcomes, &cells, failed.len())?;

        // Cache only complete fully-successful runs, so a cache hit can
        // never replay a transient failure.
        if self.options.cache && !from_cache && failed.is_empty() {
            save_outcomes(
                &self.cache_path(fingerprint),
                fingerprint,
                plan.total(),
                &run.outcomes,
            )?;
        }

        let cells_simulated = cells.len() as u64;
        let report = JobReport {
            job: id,
            spec: plan.spec().name.clone(),
            backend: backend_name.to_string(),
            fingerprint,
            digest,
            from_cache,
            resumed_trials: run.resumed,
            stats: run.stats,
            failed_trials: failed.len(),
            cells,
            sink_path,
            plan: "full",
            cells_simulated,
            cells_interpolated: 0,
            trials_saved: 0,
            ci_early_stops: 0,
        };
        tapeworm_obs::write_atomic(&self.queue.report_path(id), report.to_json().as_bytes())?;
        self.queue.set_state(id, JobState::Done)?;
        Ok(report)
    }

    /// The pruned (planner-driven) job path. Runs in-process regardless
    /// of the configured backend — the planner's serial adaptive loop
    /// *is* the scheduler — and never consults or populates the
    /// fingerprint cache: estimates are not ground truth and must never
    /// be replayable as such.
    fn run_job_pruned(
        &self,
        id: JobId,
        plan: &SweepPlan,
        planner: &PlannerConfig,
    ) -> Result<JobReport, ServiceError> {
        let fingerprint = plan.fingerprint_as(PlanMode::Pruned);
        let options = SweepOptions::default()
            .with_threads(1)
            .with_retry(self.options.retry)
            .with_obs(self.options.obs);
        let outcome = run_sweep_planned(
            plan.configs(),
            plan.trials(),
            plan.base(),
            &options,
            planner,
        );
        let header = SinkHeader {
            job: &format!("{id:06}"),
            spec: &plan.spec().name,
            fingerprint,
            backend: "planner",
            from_cache: false,
            threads: 1,
            configs: plan.configs().len(),
            trials: plan.trials(),
            plan: "pruned",
        };
        let sink_path = self.queue.sink_path(id);
        let digest = sink::write_planned(&sink_path, &header, &outcome)?;
        let cells: Vec<TrialSummary> = outcome
            .cells()
            .iter()
            .filter_map(|cell| match cell {
                PlannedCell::Simulated { summary, .. } => Some(summary.clone()),
                PlannedCell::Interpolated(_) => None,
            })
            .collect();
        let report = JobReport {
            job: id,
            spec: plan.spec().name.clone(),
            backend: "planner".to_string(),
            fingerprint,
            digest,
            from_cache: false,
            resumed_trials: 0,
            stats: *outcome.fault_stats(),
            failed_trials: outcome.failed().len(),
            cells,
            sink_path,
            plan: "pruned",
            cells_simulated: outcome.cells_simulated(),
            cells_interpolated: outcome.cells_interpolated(),
            trials_saved: outcome.trials_saved(),
            ci_early_stops: outcome.ci_early_stops(),
        };
        tapeworm_obs::write_atomic(&self.queue.report_path(id), report.to_json().as_bytes())?;
        self.queue.set_state(id, JobState::Done)?;
        Ok(report)
    }

    /// Drains the queue FIFO through `backend`, returning per-job
    /// reports in claim order.
    ///
    /// # Errors
    ///
    /// Stops at the first aborting job (which is marked `failed`).
    pub fn run_pending(&self, backend: &dyn WorkerBackend) -> Result<Vec<JobReport>, ServiceError> {
        let mut reports = Vec::new();
        while let Some(id) = self.queue.claim_next()? {
            reports.push(self.run_job(id, backend)?);
        }
        Ok(reports)
    }
}

impl JobReport {
    /// Renders the `report.json` document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"job\": \"{:06}\", \"spec\": \"{}\", \"backend\": \"{}\", \
             \"fingerprint\": \"0x{:016x}\", \"digest\": \"0x{:016x}\", \
             \"from_cache\": {}, \"resumed_trials\": {}, \"trials_computed\": {}, \
             \"retries\": {}, \"panics\": {}, \"failed_trials\": {}, \
             \"plan\": \"{}\", \"cells_simulated\": {}, \"cells_interpolated\": {}, \
             \"trials_saved\": {}, \"ci_early_stops\": {}}}\n",
            self.job,
            self.spec,
            self.backend,
            self.fingerprint,
            self.digest,
            self.from_cache,
            self.resumed_trials,
            self.stats.trials_computed,
            self.stats.retries,
            self.stats.panics,
            self.failed_trials,
            self.plan,
            self.cells_simulated,
            self.cells_interpolated,
            self.trials_saved,
            self.ci_early_stops,
        )
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InProcessBackend;
    use std::fs;

    const SPEC: &str = "name = \"svc-demo\"\ntrials = 2\nscale = 20000\n\
                        workloads = [\"xlisp\"]\ncache_kb = [1]\n";

    fn temp_service(tag: &str, options: ServiceOptions) -> SweepService {
        let root = std::env::temp_dir().join(format!("tapeworm-service-test-{tag}"));
        let _ = fs::remove_dir_all(&root);
        SweepService::open(&root, options).unwrap()
    }

    #[test]
    fn lifecycle_submit_run_done_with_artifacts() {
        let svc = temp_service("lifecycle", ServiceOptions::default());
        let id = svc.submit(SPEC).unwrap();
        assert_eq!(svc.queue().state(id).unwrap(), Some(JobState::Submitted));
        let reports = svc.run_pending(&InProcessBackend).unwrap();
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(svc.queue().state(id).unwrap(), Some(JobState::Done));
        assert!(!report.from_cache);
        assert_eq!(report.stats.trials_computed, 2);
        assert_eq!(report.failed_trials, 0);
        let sink = fs::read_to_string(&report.sink_path).unwrap();
        assert_eq!(crate::sink::read_digest(&sink), Some(report.digest));
        let report_json = fs::read_to_string(svc.queue().report_path(id)).unwrap();
        assert!(report_json.contains(&format!("0x{:016x}", report.digest)));
        // The engine checkpoint must not survive completion.
        assert!(!svc.queue().checkpoint_path(id).exists());
        fs::remove_dir_all(svc.queue().root()).unwrap();
    }

    #[test]
    fn bad_specs_are_rejected_at_submit_and_failed_at_run() {
        let svc = temp_service("badspec", ServiceOptions::default());
        assert!(matches!(
            svc.submit("trials = 1"),
            Err(ServiceError::Spec(_))
        ));
        assert_eq!(svc.queue().jobs().unwrap(), vec![]);
        // A spec corrupted after submission fails at run time.
        let id = svc.submit(SPEC).unwrap();
        fs::write(svc.queue().spec_path(id), "garbage").unwrap();
        assert!(svc.run_job(id, &InProcessBackend).is_err());
        assert_eq!(svc.queue().state(id).unwrap(), Some(JobState::Failed));
        let report = fs::read_to_string(svc.queue().report_path(id)).unwrap();
        assert!(report.contains("error"));
        assert!(matches!(
            svc.run_job(999, &InProcessBackend),
            Err(ServiceError::UnknownJob(999))
        ));
        fs::remove_dir_all(svc.queue().root()).unwrap();
    }

    #[test]
    fn second_identical_job_is_served_from_cache_bit_identically() {
        let svc = temp_service("cachehit", ServiceOptions::default());
        let a = svc.submit(SPEC).unwrap();
        let b = svc.submit(SPEC).unwrap();
        let reports = svc.run_pending(&InProcessBackend).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(!reports[0].from_cache);
        assert!(reports[1].from_cache);
        assert_eq!(reports[1].backend, "cache");
        assert_eq!(reports[1].stats, FaultStats::default());
        assert_eq!(reports[0].digest, reports[1].digest);
        assert_eq!(
            fs::read_to_string(svc.queue().sink_path(a))
                .unwrap()
                .lines()
                .count(),
            fs::read_to_string(svc.queue().sink_path(b))
                .unwrap()
                .lines()
                .count()
        );
        fs::remove_dir_all(svc.queue().root()).unwrap();
    }

    #[test]
    fn cache_can_be_disabled() {
        let svc = temp_service(
            "nocache",
            ServiceOptions {
                cache: false,
                ..ServiceOptions::default()
            },
        );
        svc.submit(SPEC).unwrap();
        svc.submit(SPEC).unwrap();
        let reports = svc.run_pending(&InProcessBackend).unwrap();
        assert!(reports.iter().all(|r| !r.from_cache));
        assert_eq!(reports[0].digest, reports[1].digest);
        assert!(!svc.queue().root().join("cache").exists());
        fs::remove_dir_all(svc.queue().root()).unwrap();
    }
}
