// Property-based suites need the external `proptest` crate, which the
// offline build intentionally omits. Enable with
// `--features proptest` after restoring the dev-dependency (see ci.sh).
#![cfg(feature = "proptest")]

//! Property-based tests for the statistics crate.

use proptest::prelude::*;
use tapeworm_stats::{OnlineStats, SeedSeq, Summary, Zipf};

proptest! {
    #[test]
    fn online_matches_naive(xs in proptest::collection::vec(-1.0e6f64..1.0e6, 1..200)) {
        let mut acc = OnlineStats::new();
        for &x in &xs {
            acc.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        prop_assert!((acc.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((acc.sample_variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
        }
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(acc.min(), min);
        prop_assert_eq!(acc.max(), max);
    }

    #[test]
    fn merge_is_associative_enough(
        a in proptest::collection::vec(-1.0e3f64..1.0e3, 1..50),
        b in proptest::collection::vec(-1.0e3f64..1.0e3, 1..50),
    ) {
        let mut whole = OnlineStats::new();
        for &x in a.iter().chain(&b) {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        for &x in &a { left.push(x); }
        let mut right = OnlineStats::new();
        for &x in &b { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        prop_assert!((left.sample_variance() - whole.sample_variance()).abs()
            < 1e-6 * (1.0 + whole.sample_variance().abs()));
    }

    #[test]
    fn summary_invariants(xs in proptest::collection::vec(0.0f64..1.0e9, 1..100)) {
        let s = Summary::from_values(xs.iter().copied()).unwrap();
        prop_assert!(s.min() <= s.mean() + 1e-6);
        prop_assert!(s.mean() <= s.max() + 1e-6);
        prop_assert!(s.range() >= -1e-9);
        prop_assert!(s.stddev() >= 0.0);
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    #[test]
    fn zipf_cdf_monotone(n in 1usize..512, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s).unwrap();
        let mut prev = 0.0;
        let mut total = 0.0;
        for r in 0..n {
            let p = z.pmf(r);
            prop_assert!(p >= 0.0);
            if s > 0.0 && r > 0 {
                // Monotone non-increasing mass in rank.
                prop_assert!(p <= prev + 1e-12);
            }
            prev = p;
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zipf_rank_in_range(n in 1usize..512, s in 0.0f64..3.0, u in 0.0f64..1.0) {
        let z = Zipf::new(n, s).unwrap();
        prop_assert!(z.rank_for(u) < n);
    }

    #[test]
    fn seed_streams_do_not_collide(base in any::<u64>(), i in 0u64..1000, j in 0u64..1000) {
        prop_assume!(i != j);
        let s = SeedSeq::new(base);
        prop_assert_ne!(s.derive("trial", i), s.derive("trial", j));
    }
}
