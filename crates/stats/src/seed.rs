//! Deterministic seed derivation for reproducible experiments.
//!
//! Every experiment in the reproduction is a function of one base seed.
//! Trials, tasks and subsystems each derive their own independent RNG
//! stream from that base via [`SeedSeq`], so that (a) re-running an
//! experiment reproduces it bit-for-bit, and (b) changing the trial index
//! re-randomizes exactly the system effects the paper says vary from run
//! to run (physical page allocation, set-sample choice) without touching
//! the workload's own reference pattern.

use crate::rng::{splitmix64, Rng};

/// A labelled, hierarchical seed from which independent RNG streams are
/// derived.
///
/// # Examples
///
/// ```
/// use tapeworm_stats::SeedSeq;
///
/// let base = SeedSeq::new(0xA5F0);
/// let trial3 = base.derive("trial", 3);
/// let alloc = trial3.derive("frame-alloc", 0);
/// let mut rng = alloc.rng();
/// // Same derivation path, same stream:
/// let mut rng2 = base.derive("trial", 3).derive("frame-alloc", 0).rng();
/// assert_eq!(rng.next_u64(), rng2.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSeq {
    state: u64,
}

impl SeedSeq {
    /// Creates a seed sequence from a base seed.
    pub fn new(base: u64) -> Self {
        SeedSeq {
            state: splitmix64(base ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derives a child seed for a labelled sub-stream.
    ///
    /// The `label` partitions by purpose ("trial", "frame-alloc", …) and
    /// `index` by instance, so sibling streams never collide.
    pub fn derive(&self, label: &str, index: u64) -> SeedSeq {
        let mut h = self.state;
        for b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(*b));
        }
        h = splitmix64(h ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        SeedSeq { state: h }
    }

    /// The raw 64-bit seed value.
    pub fn value(&self) -> u64 {
        self.state
    }

    /// Instantiates a deterministic RNG seeded from this sequence.
    pub fn rng(&self) -> Rng {
        Rng::from_seed(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let a = SeedSeq::new(1).derive("x", 0);
        let b = SeedSeq::new(1).derive("x", 0);
        assert_eq!(a, b);
        assert_eq!(a.rng().gen::<u64>(), b.rng().gen::<u64>());
    }

    #[test]
    fn labels_and_indices_separate_streams() {
        let base = SeedSeq::new(42);
        assert_ne!(base.derive("a", 0), base.derive("b", 0));
        assert_ne!(base.derive("a", 0), base.derive("a", 1));
        assert_ne!(base.derive("a", 0).value(), base.value());
    }

    #[test]
    fn different_bases_differ() {
        assert_ne!(SeedSeq::new(0), SeedSeq::new(1));
    }

    #[test]
    fn chains_are_order_sensitive() {
        let base = SeedSeq::new(9);
        let ab = base.derive("a", 0).derive("b", 0);
        let ba = base.derive("b", 0).derive("a", 0);
        assert_ne!(ab, ba);
    }
}
