//! Trial-set summaries in the shape of the paper's Tables 7–10.

use std::error::Error;
use std::fmt;

/// The sample of values handed to [`Summary::from_values`] was empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptySampleError;

impl fmt::Display for EmptySampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("cannot summarize an empty sample")
    }
}

impl Error for EmptySampleError {}

/// Summary statistics for a set of experimental trials.
///
/// This mirrors the columns of the paper's measurement-variation tables:
/// mean `x̄`, standard deviation `s`, minimum, maximum and range, plus the
/// "percent of mean" renderings used throughout Tables 7–10.
///
/// # Examples
///
/// ```
/// use tapeworm_stats::Summary;
///
/// // espresso row of Table 10: tightly clustered miss counts.
/// let s = Summary::from_values([4.21e6, 4.30e6, 4.26e6, 4.27e6]).unwrap();
/// assert!(s.stddev_pct_of_mean() < 1.5);
/// assert!(s.range() <= s.max());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    stddev: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Summarizes a non-empty collection of values.
    ///
    /// # Errors
    ///
    /// Returns [`EmptySampleError`] if the iterator yields no values.
    pub fn from_values<I>(values: I) -> Result<Self, EmptySampleError>
    where
        I: IntoIterator<Item = f64>,
    {
        let mut acc = crate::OnlineStats::new();
        for v in values {
            acc.push(v);
        }
        acc.summary().ok_or(EmptySampleError)
    }

    /// Assembles a summary from already-computed parts.
    ///
    /// Used by [`OnlineStats::summary`](crate::OnlineStats::summary); most
    /// callers should prefer [`Summary::from_values`].
    pub fn from_parts(count: u64, mean: f64, stddev: f64, min: f64, max: f64) -> Self {
        Summary {
            count,
            mean,
            stddev,
            min,
            max,
        }
    }

    /// Number of trials summarized.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the trial values (the paper's `x̄`).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (the paper's `s`).
    pub fn stddev(&self) -> f64 {
        self.stddev
    }

    /// Smallest trial value.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest trial value.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// `max - min`, the paper's *Range* column.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// `s` as a percentage of the mean (Table 7 prints `s (x%)`).
    ///
    /// Returns 0.0 when the mean is zero to keep degenerate rows printable.
    pub fn stddev_pct_of_mean(&self) -> f64 {
        pct(self.stddev, self.mean)
    }

    /// Percent difference of the minimum below the mean.
    ///
    /// Table 7 prints minima as "`(26%)`" meaning 26% *below* the mean.
    pub fn min_pct_below_mean(&self) -> f64 {
        pct(self.mean - self.min, self.mean)
    }

    /// Percent difference of the maximum above the mean.
    pub fn max_pct_above_mean(&self) -> f64 {
        pct(self.max - self.mean, self.mean)
    }

    /// Range as a percentage of the mean.
    pub fn range_pct_of_mean(&self) -> f64 {
        pct(self.range(), self.mean)
    }

    /// Half-width of an approximate 95% confidence interval for the mean
    /// (normal approximation, `1.96 s / sqrt(n)`).
    ///
    /// The paper notes that combined variance sources "force a larger
    /// number of trials to be performed to increase the level of confidence
    /// in the mean value"; this quantifies that.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            1.96 * self.stddev / (self.count as f64).sqrt()
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4e} s={:.4e} ({:.0}%) min={:.4e} max={:.4e} range={:.4e}",
            self.count,
            self.mean,
            self.stddev,
            self.stddev_pct_of_mean(),
            self.min,
            self.max,
            self.range()
        )
    }
}

fn pct(part: f64, whole: f64) -> f64 {
    if whole == 0.0 {
        0.0
    } else {
        100.0 * part / whole
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_an_error() {
        assert_eq!(
            Summary::from_values(std::iter::empty()),
            Err(EmptySampleError)
        );
        assert!(!EmptySampleError.to_string().is_empty());
    }

    #[test]
    fn identical_values_have_zero_spread() {
        let s = Summary::from_values([7.0, 7.0, 7.0]).unwrap();
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.range(), 0.0);
        assert_eq!(s.stddev_pct_of_mean(), 0.0);
    }

    #[test]
    fn percent_columns_match_paper_convention() {
        // A synthetic eqntott-like row: mean 4.42, min 3.25, max 13.13.
        let s = Summary::from_parts(16, 4.42, 2.53, 3.25, 13.13);
        assert!((s.stddev_pct_of_mean() - 57.2).abs() < 1.0);
        assert!((s.min_pct_below_mean() - 26.5).abs() < 1.0);
        assert!((s.max_pct_above_mean() - 197.0).abs() < 1.0);
        assert!((s.range_pct_of_mean() - 223.5).abs() < 1.0);
    }

    #[test]
    fn zero_mean_percentages_are_zero() {
        let s = Summary::from_parts(4, 0.0, 0.0, 0.0, 0.0);
        assert_eq!(s.stddev_pct_of_mean(), 0.0);
        assert_eq!(s.range_pct_of_mean(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_more_trials() {
        let few = Summary::from_parts(4, 10.0, 2.0, 8.0, 12.0);
        let many = Summary::from_parts(64, 10.0, 2.0, 8.0, 12.0);
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }

    #[test]
    fn display_is_nonempty() {
        let s = Summary::from_values([1.0, 2.0]).unwrap();
        assert!(!s.to_string().is_empty());
    }
}
