//! Confidence intervals for trial means — the planner's stopping rule.
//!
//! The paper observes that combined variance sources "force a larger
//! number of trials to be performed to increase the level of confidence
//! in the mean value". The sweep planner turns that around: it keeps
//! running trials of a cell *until* the confidence interval of the mean
//! closes below a configured bound, then stops early and reports the
//! interval it stopped at.
//!
//! The math is the classic Student-t interval for a sample mean:
//! `x̄ ± t(df, confidence) · s / √n` with `df = n − 1`. The critical
//! values are a hardcoded two-sided table (the workspace builds offline
//! with no statistics dependency); between tabulated rows the *lower*
//! degrees-of-freedom row is used, which never understates `t`, so the
//! interval is conservative — it can only be wider than the exact one.
//!
//! Determinism: trial values are themselves deterministic functions of
//! `(config, base_seed, trial_index)`, so an interval computed over the
//! first `n` committed trials is bit-identical on every host and thread
//! count, and so is any stopping decision derived from it.

use crate::OnlineStats;

/// Tabulated two-sided Student-t critical values: `(df, t)` rows per
/// confidence level, ending in the normal-limit row used for large
/// `df`. Rows must be ascending in `df`.
const T_ROWS_90: [(u64, f64); 34] = [
    (1, 6.314),
    (2, 2.920),
    (3, 2.353),
    (4, 2.132),
    (5, 2.015),
    (6, 1.943),
    (7, 1.895),
    (8, 1.860),
    (9, 1.833),
    (10, 1.812),
    (11, 1.796),
    (12, 1.782),
    (13, 1.771),
    (14, 1.761),
    (15, 1.753),
    (16, 1.746),
    (17, 1.740),
    (18, 1.734),
    (19, 1.729),
    (20, 1.725),
    (21, 1.721),
    (22, 1.717),
    (23, 1.714),
    (24, 1.711),
    (25, 1.708),
    (26, 1.706),
    (27, 1.703),
    (28, 1.701),
    (29, 1.699),
    (30, 1.697),
    (40, 1.684),
    (60, 1.671),
    (120, 1.658),
    (u64::MAX, 1.645),
];

const T_ROWS_95: [(u64, f64); 34] = [
    (1, 12.706),
    (2, 4.303),
    (3, 3.182),
    (4, 2.776),
    (5, 2.571),
    (6, 2.447),
    (7, 2.365),
    (8, 2.306),
    (9, 2.262),
    (10, 2.228),
    (11, 2.201),
    (12, 2.179),
    (13, 2.160),
    (14, 2.145),
    (15, 2.131),
    (16, 2.120),
    (17, 2.110),
    (18, 2.101),
    (19, 2.093),
    (20, 2.086),
    (21, 2.080),
    (22, 2.074),
    (23, 2.069),
    (24, 2.064),
    (25, 2.060),
    (26, 2.056),
    (27, 2.052),
    (28, 2.048),
    (29, 2.045),
    (30, 2.042),
    (40, 2.021),
    (60, 2.000),
    (120, 1.980),
    (u64::MAX, 1.960),
];

const T_ROWS_99: [(u64, f64); 34] = [
    (1, 63.657),
    (2, 9.925),
    (3, 5.841),
    (4, 4.604),
    (5, 4.032),
    (6, 3.707),
    (7, 3.499),
    (8, 3.355),
    (9, 3.250),
    (10, 3.169),
    (11, 3.106),
    (12, 3.055),
    (13, 3.012),
    (14, 2.977),
    (15, 2.947),
    (16, 2.921),
    (17, 2.898),
    (18, 2.878),
    (19, 2.861),
    (20, 2.845),
    (21, 2.831),
    (22, 2.819),
    (23, 2.807),
    (24, 2.797),
    (25, 2.787),
    (26, 2.779),
    (27, 2.771),
    (28, 2.763),
    (29, 2.756),
    (30, 2.750),
    (40, 2.704),
    (60, 2.660),
    (120, 2.617),
    (u64::MAX, 2.576),
];

/// Two-sided Student-t critical value for a given confidence level and
/// degrees of freedom. Between tabulated rows the lower-`df` (larger
/// `t`) row applies, so the returned value never understates the exact
/// one.
///
/// # Panics
///
/// Panics if `df == 0` or `confidence` is not one of the supported
/// levels (0.90, 0.95, 0.99).
pub fn student_t_critical(confidence: f64, df: u64) -> f64 {
    assert!(df > 0, "Student-t needs at least one degree of freedom");
    let rows: &[(u64, f64)] = if (confidence - 0.90).abs() < 1e-9 {
        &T_ROWS_90
    } else if (confidence - 0.95).abs() < 1e-9 {
        &T_ROWS_95
    } else if (confidence - 0.99).abs() < 1e-9 {
        &T_ROWS_99
    } else {
        panic!("unsupported confidence level {confidence} (use 0.90, 0.95, or 0.99)");
    };
    // Largest tabulated df that does not exceed the requested df.
    rows.iter()
        .rev()
        .find(|&&(d, _)| d <= df)
        .map(|&(_, t)| t)
        .expect("table starts at df = 1")
}

/// A confidence interval for a sample mean: `mean ± half_width` at the
/// stated confidence level, over `count` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Number of values the interval summarizes.
    pub count: u64,
    /// The sample mean.
    pub mean: f64,
    /// Half-width of the interval (`t · s / √n`).
    pub half_width: f64,
    /// Confidence level (e.g. 0.95).
    pub confidence: f64,
}

impl MeanCi {
    /// Lower edge of the interval.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper edge of the interval.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the interval covers `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.low() <= x && x <= self.high()
    }

    /// Half-width relative to the magnitude of the mean — the planner's
    /// stopping criterion. A degenerate zero-mean sample reports `0.0`
    /// when the half-width is also zero (an exact interval) and
    /// infinity otherwise (never tight enough to stop on).
    pub fn relative_half_width(&self) -> f64 {
        if self.half_width == 0.0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// The Student-t interval from already-computed summary parts.
///
/// Returns `None` when `count < 2` — one value has no spread to
/// estimate, so no honest interval exists.
pub fn mean_ci_from_parts(count: u64, mean: f64, stddev: f64, confidence: f64) -> Option<MeanCi> {
    if count < 2 {
        return None;
    }
    let t = student_t_critical(confidence, count - 1);
    Some(MeanCi {
        count,
        mean,
        half_width: t * stddev / (count as f64).sqrt(),
        confidence,
    })
}

/// The Student-t interval for the mean of a running accumulator.
///
/// Returns `None` when fewer than two values have been pushed.
pub fn mean_ci(stats: &OnlineStats, confidence: f64) -> Option<MeanCi> {
    mean_ci_from_parts(
        stats.count(),
        stats.mean(),
        stats.sample_stddev(),
        confidence,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn hand_computed_interval_matches() {
        // Values 1, 2, 3: mean 2, s = 1, n = 3, t(0.95, df=2) = 4.303.
        let mut acc = OnlineStats::new();
        for v in [1.0, 2.0, 3.0] {
            acc.push(v);
        }
        let ci = mean_ci(&acc, 0.95).expect("n = 3");
        assert_eq!(ci.count, 3);
        assert!((ci.mean - 2.0).abs() < 1e-12);
        let want = 4.303 * 1.0 / 3.0f64.sqrt();
        assert!((ci.half_width - want).abs() < 1e-9, "got {}", ci.half_width);
        assert!(ci.contains(2.0) && ci.contains(ci.low()) && ci.contains(ci.high()));
        assert!(!ci.contains(ci.high() + 1e-9));
        assert!((ci.relative_half_width() - want / 2.0).abs() < 1e-12);
    }

    #[test]
    fn fewer_than_two_values_yield_no_interval() {
        let mut acc = OnlineStats::new();
        assert!(mean_ci(&acc, 0.95).is_none());
        acc.push(42.0);
        assert!(mean_ci(&acc, 0.95).is_none());
        acc.push(42.0);
        let ci = mean_ci(&acc, 0.95).expect("two identical values");
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.relative_half_width(), 0.0, "exact interval is tight");
    }

    #[test]
    fn zero_mean_nonzero_spread_is_never_tight() {
        let ci = mean_ci_from_parts(4, 0.0, 1.0, 0.95).unwrap();
        assert!(ci.relative_half_width().is_infinite());
    }

    #[test]
    fn t_table_is_monotone_in_df_and_confidence() {
        for conf in [0.90, 0.95, 0.99] {
            let mut prev = f64::INFINITY;
            for df in 1..=200 {
                let t = student_t_critical(conf, df);
                assert!(t <= prev, "t must not grow with df ({conf}, {df})");
                assert!(t > 0.0);
                prev = t;
            }
        }
        for df in [1, 5, 30, 1000] {
            assert!(student_t_critical(0.90, df) < student_t_critical(0.95, df));
            assert!(student_t_critical(0.95, df) < student_t_critical(0.99, df));
        }
        // Conservative lookup: any large finite df rounds *down* to the
        // df = 120 row, never to the normal limit below it.
        assert!((student_t_critical(0.95, 1 << 20) - 1.980).abs() < 1e-12);
        assert!((student_t_critical(0.95, u64::MAX) - 1.960).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn unsupported_confidence_panics() {
        let _ = student_t_critical(0.42, 5);
    }

    #[test]
    #[should_panic(expected = "degree of freedom")]
    fn zero_df_panics() {
        let _ = student_t_critical(0.95, 0);
    }

    /// Property: for a fixed spread, the half-width strictly shrinks as
    /// the sample count grows — `t(n−1)` is non-increasing and `√n`
    /// strictly increasing. SplitMix64-driven over random spreads, the
    /// repo's always-on property-loop idiom.
    #[test]
    fn half_width_shrinks_monotonically_in_sample_count() {
        let mut rng = Rng::from_seed(0x5eed_c1);
        for _ in 0..50 {
            let stddev = rng.next_f64() * 1e6 + 1e-3;
            let conf = [0.90, 0.95, 0.99][rng.gen_range(0..3u64) as usize];
            let mut prev = f64::INFINITY;
            for n in 2..=150u64 {
                let hw = mean_ci_from_parts(n, 100.0, stddev, conf)
                    .unwrap()
                    .half_width;
                assert!(hw < prev, "half-width must shrink: n={n} {hw} !< {prev}");
                prev = hw;
            }
        }
    }

    /// Property: on synthetic populations with a known mean, the 95%
    /// interval covers the true mean at least ~nominally often. The
    /// population is an Irwin–Hall sum of 12 uniforms (≈ normal with
    /// known mean), SplitMix64-seeded so the check is deterministic.
    #[test]
    fn coverage_is_at_least_nominal_on_known_populations() {
        let mut rng = Rng::from_seed(0x5eed_c2);
        let (mu, sigma) = (1000.0, 25.0);
        let draw = |rng: &mut Rng| {
            let z: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
            mu + sigma * z
        };
        for (n, experiments) in [(4usize, 400), (8, 400), (16, 200)] {
            let mut covered = 0;
            for _ in 0..experiments {
                let mut acc = OnlineStats::new();
                for _ in 0..n {
                    acc.push(draw(&mut rng));
                }
                if mean_ci(&acc, 0.95).unwrap().contains(mu) {
                    covered += 1;
                }
            }
            let rate = f64::from(covered) / f64::from(experiments);
            assert!(
                rate >= 0.92,
                "95% CI covered the true mean only {rate:.3} of the time at n={n}"
            );
        }
    }
}
