//! Welford's online mean/variance accumulator.

use crate::summary::Summary;

/// Numerically stable online accumulator for mean, variance, min and max.
///
/// Used wherever a long simulation wants running statistics without
/// retaining every sample (e.g. per-set miss counts under sampling).
///
/// # Examples
///
/// ```
/// use tapeworm_stats::OnlineStats;
///
/// let mut acc = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.count(), 4);
/// assert!((acc.mean() - 2.5).abs() < 1e-12);
/// assert!((acc.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`n - 1` denominator; 0.0 for n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Unbiased sample standard deviation `s`.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    ///
    /// The result is identical (up to floating-point rounding) to pushing
    /// all of `other`'s observations into `self`.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Freezes the accumulator into a [`Summary`], or `None` when empty.
    pub fn summary(&self) -> Option<Summary> {
        if self.count == 0 {
            None
        } else {
            Some(Summary::from_parts(
                self.count,
                self.mean,
                self.sample_stddev(),
                self.min,
                self.max,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_identity() {
        let acc = OnlineStats::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.sample_variance(), 0.0);
        assert!(acc.summary().is_none());
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut acc = OnlineStats::new();
        acc.push(42.0);
        assert_eq!(acc.mean(), 42.0);
        assert_eq!(acc.sample_variance(), 0.0);
        assert_eq!(acc.min(), 42.0);
        assert_eq!(acc.max(), 42.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut acc = OnlineStats::new();
        for &x in &xs {
            acc.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((acc.mean() - mean).abs() < 1e-12);
        assert!((acc.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [10.0, 20.0, 15.0, 40.0, 5.0, 30.0];
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..3] {
            left.push(x);
        }
        for &x in &xs[3..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_noop() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
