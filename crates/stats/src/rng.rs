//! A small, dependency-free deterministic PRNG.
//!
//! The reproduction needs randomness in exactly four shapes — raw 64-bit
//! draws, bounded integers, uniform `f64` in `[0, 1)` and slice shuffles —
//! and it needs every draw to be a pure function of a [`SeedSeq`] so that
//! trials replay bit-for-bit on any platform and any thread count. A
//! SplitMix64 counter generator provides all of that in ~10 lines of
//! arithmetic, with no external crates (the build must succeed offline).
//!
//! [`SeedSeq`]: crate::SeedSeq

use std::ops::{Range, RangeInclusive};

/// A SplitMix64 pseudo-random generator.
///
/// Statistically strong enough for workload synthesis and replacement
/// policies (it passes BigCrush as a 64-bit mixer), trivially seedable,
/// `Clone`-able for replay, and exactly reproducible everywhere.
///
/// # Examples
///
/// ```
/// use tapeworm_stats::Rng;
///
/// let mut a = Rng::from_seed(7);
/// let mut b = Rng::from_seed(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(0..10u64);
/// assert!(x < 10);
/// let f = a.next_f64();
/// assert!((0.0..1.0).contains(&f));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rng {
    state: u64,
}

/// Golden-ratio increment of the SplitMix64 counter.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer; a strong 64-bit mixing function.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Draws the next uniformly distributed 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draws a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Draws a value of a [`Sample`] type (`u64`, `u32`, `f64`, `bool`).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Uniform draw in `[0, span)` via 128-bit widening multiply
    /// (Lemire's multiply-shift; bias is < 2⁻⁶⁴ · span, immaterial for
    /// the spans used here and exactly reproducible everywhere).
    fn bounded(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// Types [`Rng::gen`] can draw directly.
pub trait Sample {
    /// Draws one value from `rng`.
    fn sample(rng: &mut Rng) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut Rng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut Rng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for f64 {
    fn sample(rng: &mut Rng) -> f64 {
        rng.next_f64()
    }
}

impl Sample for bool {
    fn sample(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded(span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded(span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        assert!(
            self.start.is_finite() && self.end.is_finite(),
            "gen_range on non-finite range"
        );
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng::from_seed(123);
        let mut b = Rng::from_seed(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn golden_splitmix64_values() {
        // Reference values for seed 0 from the canonical SplitMix64
        // (Steele, Lea & Flood; same constants as Java's SplittableRandom).
        let mut r = Rng::from_seed(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Rng::from_seed(9);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f), "{f} escaped [0,1)");
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::from_seed(5);
        for _ in 0..10_000 {
            assert!(r.gen_range(10..20u64) >= 10);
            assert!(r.gen_range(10..20u64) < 20);
            let v = r.gen_range(3..=7usize);
            assert!((3..=7).contains(&v));
            let f = r.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let b = r.gen_range(0..32u8);
            assert!(b < 32);
        }
    }

    #[test]
    fn range_draws_cover_the_domain() {
        let mut r = Rng::from_seed(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::from_seed(77);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "{frac}");
        let mut r = Rng::from_seed(78);
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::from_seed(4);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "64 elements virtually never shuffle to identity");
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut r = Rng::from_seed(2);
        let _ = r.gen_range(0..=u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = Rng::from_seed(0).gen_range(5..5u64);
    }

    #[test]
    fn mean_of_unit_draws_is_half() {
        let mut r = Rng::from_seed(31);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }
}
