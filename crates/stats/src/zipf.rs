//! Zipf-distributed sampling for synthetic reference streams.

use std::error::Error;
use std::fmt;

use crate::rng::Rng;

/// Parameters for [`Zipf::new`] were invalid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZipfError {
    /// The number of elements was zero.
    EmptyDomain,
    /// The exponent was not a finite, non-negative number.
    BadExponent(f64),
}

impl fmt::Display for ZipfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZipfError::EmptyDomain => f.write_str("zipf domain must be non-empty"),
            ZipfError::BadExponent(s) => {
                write!(f, "zipf exponent must be finite and >= 0, got {s}")
            }
        }
    }
}

impl Error for ZipfError {}

/// A Zipf(`n`, `s`) sampler over ranks `0..n` using a precomputed CDF.
///
/// The workload models use Zipf popularity to choose which "procedure" a
/// task executes next: a few hot procedures dominate (capturing temporal
/// locality) while a long tail keeps the full text footprint warm — the
/// combination that gives the miss-ratio-vs-cache-size curves their
/// characteristic knee.
///
/// # Examples
///
/// ```
/// use tapeworm_stats::{Rng, Zipf};
///
/// let zipf = Zipf::new(100, 1.0)?;
/// let mut rng = Rng::from_seed(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// # Ok::<(), tapeworm_stats::ZipfError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// `s = 0` degenerates to the uniform distribution; larger `s` skews
    /// probability toward low ranks.
    ///
    /// # Errors
    ///
    /// Returns [`ZipfError::EmptyDomain`] when `n == 0` and
    /// [`ZipfError::BadExponent`] when `s` is negative, NaN or infinite.
    pub fn new(n: usize, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::EmptyDomain);
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ZipfError::BadExponent(s));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against rounding leaving the last entry below 1.0.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf { cdf })
    }

    /// Number of ranks in the domain.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when the domain has exactly one rank (never zero by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..self.len()`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        self.rank_for(u)
    }

    /// Maps a uniform variate in `[0, 1)` to a rank; exposed for
    /// deterministic replay in tests.
    ///
    /// Zipf mass concentrates in the lowest ranks, so the hot path is a
    /// short linear scan over the head of the CDF — for the skewed
    /// exponents the workloads use, most draws resolve in the first few
    /// always-cached, perfectly-predicted compares. Variates past the
    /// head fall back to the library binary search over the whole
    /// slice, whose result the scan provably agrees with: the scan only
    /// answers when it finds the first entry *strictly above* the
    /// variate with no exact match before it — exactly the insertion
    /// point `binary_search_by` would report. Exact equality (possible
    /// but vanishingly rare: the variate is a 53-bit-grid value) takes
    /// the fallback so duplicate-entry resolution stays bit-for-bit.
    pub fn rank_for(&self, u: f64) -> usize {
        let cdf = &self.cdf;
        let head = cdf.len().min(8);
        for (i, &c) in cdf[..head].iter().enumerate() {
            if c == u {
                break; // equal entry: the library search resolves it
            }
            if c > u {
                return i;
            }
        }
        match cdf.binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite")) {
            Ok(i) => (i + 1).min(cdf.len() - 1),
            Err(i) => i.min(cdf.len() - 1),
        }
    }

    /// Probability mass of a given rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.len()`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(Zipf::new(0, 1.0), Err(ZipfError::EmptyDomain));
        assert_eq!(Zipf::new(4, -1.0), Err(ZipfError::BadExponent(-1.0)));
        assert!(Zipf::new(4, f64::NAN).is_err());
        assert!(Zipf::new(4, f64::INFINITY).is_err());
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(4, 0.0).unwrap();
        for rank in 0..4 {
            assert!((z.pmf(rank) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn low_ranks_dominate_with_positive_exponent() {
        let z = Zipf::new(50, 1.2).unwrap();
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(49));
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(128, 0.8).unwrap();
        let total: f64 = (0..128).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_stay_in_range_and_hit_hot_rank() {
        let z = Zipf::new(10, 1.0).unwrap();
        let mut rng = Rng::from_seed(7);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            counts[r] += 1;
        }
        // Rank 0 carries ~34% of the mass for n=10, s=1.
        assert!(counts[0] > counts[9]);
        assert!(counts[0] as f64 / 20_000.0 > 0.25);
    }

    #[test]
    fn rank_for_extremes() {
        let z = Zipf::new(5, 1.0).unwrap();
        assert_eq!(z.rank_for(0.0), 0);
        assert_eq!(z.rank_for(0.999_999_9), 4);
    }
}
