//! Multi-trial experiment execution.
//!
//! The paper runs 4–16 trials per configuration and reports the spread
//! (Tables 7–10). [`run_trials`] executes a trial function once per trial
//! index with a derived seed, optionally in parallel, and returns the raw
//! per-trial values plus their [`Summary`].

use crate::{SeedSeq, Summary};

/// The outcome of a multi-trial experiment: raw values in trial order and
/// their summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSet {
    values: Vec<f64>,
    summary: Summary,
}

impl TrialSet {
    /// Per-trial measurements, indexed by trial number.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Summary statistics over the trials.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }
}

/// Runs `n` trials of `f` sequentially.
///
/// Each trial receives a [`SeedSeq`] derived as `base.derive("trial", i)`,
/// so trial `i` is reproducible in isolation.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn run_trials<F>(base: SeedSeq, n: usize, mut f: F) -> TrialSet
where
    F: FnMut(SeedSeq) -> f64,
{
    assert!(n > 0, "an experiment needs at least one trial");
    let values: Vec<f64> = (0..n as u64).map(|i| f(base.derive("trial", i))).collect();
    let summary = Summary::from_values(values.iter().copied())
        .expect("n > 0 guarantees a non-empty sample");
    TrialSet { values, summary }
}

/// Runs `n` trials of `f` across `threads` OS threads.
///
/// Results are identical to [`run_trials`] (trial `i` always gets the same
/// derived seed); only wall-clock time changes. `threads == 0` or `1`
/// degrades to the sequential path.
///
/// # Panics
///
/// Panics if `n == 0` or if a trial panics.
pub fn run_trials_parallel<F>(base: SeedSeq, n: usize, threads: usize, f: F) -> TrialSet
where
    F: Fn(SeedSeq) -> f64 + Sync,
{
    assert!(n > 0, "an experiment needs at least one trial");
    if threads <= 1 {
        return run_trials(base, n, |s| f(s));
    }
    let mut values = vec![0.0f64; n];
    std::thread::scope(|scope| {
        let chunk = n.div_ceil(threads);
        for (t, slot) in values.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (j, out) in slot.iter_mut().enumerate() {
                    let i = (t * chunk + j) as u64;
                    *out = f(base.derive("trial", i));
                }
            });
        }
    });
    let summary = Summary::from_values(values.iter().copied())
        .expect("n > 0 guarantees a non-empty sample");
    TrialSet { values, summary }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn trials_get_distinct_seeds() {
        let set = run_trials(SeedSeq::new(5), 8, |seed| seed.value() as f64);
        let mut vals = set.values().to_vec();
        vals.dedup();
        assert_eq!(vals.len(), 8);
    }

    #[test]
    fn deterministic_across_runs() {
        let f = |seed: SeedSeq| seed.rng().gen_range(0.0..1.0);
        let a = run_trials(SeedSeq::new(3), 16, f);
        let b = run_trials(SeedSeq::new(3), 16, f);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential() {
        let f = |seed: SeedSeq| seed.rng().gen_range(0.0..100.0);
        let seq = run_trials(SeedSeq::new(11), 13, f);
        let par = run_trials_parallel(SeedSeq::new(11), 13, 4, f);
        assert_eq!(seq.values(), par.values());
    }

    #[test]
    fn single_thread_parallel_degrades() {
        let f = |seed: SeedSeq| seed.value() as f64;
        let seq = run_trials(SeedSeq::new(2), 5, f);
        let par = run_trials_parallel(SeedSeq::new(2), 5, 1, f);
        assert_eq!(seq.values(), par.values());
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = run_trials(SeedSeq::new(0), 0, |_| 0.0);
    }

    #[test]
    fn summary_reflects_values() {
        let set = run_trials(SeedSeq::new(1), 4, |s| (s.value() % 7) as f64);
        let expect = Summary::from_values(set.values().iter().copied()).unwrap();
        assert_eq!(*set.summary(), expect);
    }
}
