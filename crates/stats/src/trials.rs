//! Multi-trial experiment execution: a parallel scheduler with
//! deterministic, trial-index-ordered commit.
//!
//! The paper runs 4–16 trials per configuration and reports the spread
//! (Tables 7–10); the figure sweeps run dozens of configurations. Every
//! cell of that grid is an independent pure function of
//! `(config, base_seed, trial_index)` — the [`SeedSeq`] design guarantees
//! it — so the grid is embarrassingly parallel. [`TrialScheduler`] fans
//! cells out over a `std::thread` worker pool and a **committer** reorders
//! completions back into index order, so results are bit-identical
//! regardless of thread count. `threads == 1` takes a plain serial loop
//! with no thread, channel or heap machinery at all.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use crate::{SeedSeq, Summary};

/// The outcome of a multi-trial experiment: raw values in trial order and
/// their summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSet {
    values: Vec<f64>,
    summary: Summary,
}

impl TrialSet {
    /// Per-trial measurements, indexed by trial number.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Summary statistics over the trials.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }
}

/// A completed job travelling from a worker to the committer, ordered so
/// a min-heap (`BinaryHeap<Completed<T>>` with reversed `Ord`) yields the
/// lowest outstanding index first.
struct Completed<T> {
    index: usize,
    value: T,
}

impl<T> PartialEq for Completed<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}

impl<T> Eq for Completed<T> {}

impl<T> PartialOrd for Completed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Completed<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest index.
        other.index.cmp(&self.index)
    }
}

/// A worker pool that evaluates independent indexed jobs and commits
/// their results **in index order**.
///
/// The execution model is the classic dispatch-loop / worker-pool /
/// ordered-commit trio:
///
/// * **dispatch** — workers claim the next unclaimed index from a shared
///   atomic counter (dynamic load balancing; a slow cell never stalls
///   the queue behind a fixed chunk boundary);
/// * **execute** — each job runs independently; results flow back over an
///   `mpsc` channel;
/// * **commit** — the calling thread holds completions in a min-heap and
///   releases them strictly in index order, so observable output is
///   bit-identical for any worker count.
///
/// # Examples
///
/// ```
/// use tapeworm_stats::trials::TrialScheduler;
///
/// let serial = TrialScheduler::serial().run(4, |i| i * i);
/// let parallel = TrialScheduler::new(8).run(4, |i| i * i);
/// assert_eq!(serial, parallel);
/// assert_eq!(serial, vec![0, 1, 4, 9]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialScheduler {
    threads: usize,
}

impl TrialScheduler {
    /// A scheduler over `threads` workers. `0` selects the host's
    /// available parallelism; `1` is the exact serial loop.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        TrialScheduler { threads }
    }

    /// The exact serial path: one thread, no pool.
    pub fn serial() -> Self {
        TrialScheduler { threads: 1 }
    }

    /// Number of worker threads this scheduler uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates `job(0..n)` and returns the results indexed by job
    /// number. Output is identical for every thread count.
    pub fn run<T, F>(&self, n: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out = Vec::with_capacity(n);
        self.run_committed(n, job, |_, value| out.push(value));
        out
    }

    /// Evaluates `job(0..n)`, invoking `commit(index, value)` strictly in
    /// index order (0, 1, 2, …) as results become available.
    ///
    /// The commit callback runs on the calling thread, so it may hold
    /// `&mut` state (accumulate statistics, stream table rows) without
    /// synchronization, and sees exactly the sequence the serial loop
    /// would produce.
    pub fn run_committed<T, F, C>(&self, n: usize, job: F, mut commit: C)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FnMut(usize, T),
    {
        if n == 0 {
            return;
        }
        if self.threads == 1 {
            // The serial path is the reference semantics: compute and
            // commit in one loop, nothing else.
            for i in 0..n {
                let v = job(i);
                commit(i, v);
            }
            return;
        }

        let workers = self.threads.min(n);
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<Completed<T>>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let job = &job;
                scope.spawn(move || loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let value = job(index);
                    if tx.send(Completed { index, value }).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            // Deterministic committer: hold out-of-order completions in
            // a min-heap and release the head whenever it is the next
            // expected index.
            let mut pending = BinaryHeap::new();
            let mut next = 0usize;
            while next < n {
                let done = rx.recv().expect(
                    "a worker panicked before completing its trial; \
                     the experiment cannot be committed",
                );
                pending.push(done);
                while pending
                    .peek()
                    .is_some_and(|head: &Completed<T>| head.index == next)
                {
                    let head = pending.pop().expect("peeked entry exists");
                    commit(head.index, head.value);
                    next += 1;
                }
            }
        });
    }

    /// Runs `n` seeded trials of `f` and folds them into a [`TrialSet`].
    ///
    /// Trial `i` always receives `base.derive("trial", i)`, so the set is
    /// reproducible in isolation and identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn run_trials<F>(&self, base: SeedSeq, n: usize, f: F) -> TrialSet
    where
        F: Fn(SeedSeq) -> f64 + Sync,
    {
        assert!(n > 0, "an experiment needs at least one trial");
        let values = self.run(n, |i| f(base.derive("trial", i as u64)));
        let summary = Summary::from_values(values.iter().copied())
            .expect("n > 0 guarantees a non-empty sample");
        TrialSet { values, summary }
    }
}

/// Runs `n` trials of `f` sequentially.
///
/// Each trial receives a [`SeedSeq`] derived as `base.derive("trial", i)`,
/// so trial `i` is reproducible in isolation.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn run_trials<F>(base: SeedSeq, n: usize, mut f: F) -> TrialSet
where
    F: FnMut(SeedSeq) -> f64,
{
    assert!(n > 0, "an experiment needs at least one trial");
    let values: Vec<f64> = (0..n as u64).map(|i| f(base.derive("trial", i))).collect();
    let summary =
        Summary::from_values(values.iter().copied()).expect("n > 0 guarantees a non-empty sample");
    TrialSet { values, summary }
}

/// Runs `n` trials of `f` across `threads` OS threads.
///
/// Results are bit-identical to [`run_trials`] (trial `i` always gets the
/// same derived seed, and the committer restores trial order); only
/// wall-clock time changes. `threads == 0` selects the available
/// parallelism; `1` degrades to the sequential path.
///
/// # Panics
///
/// Panics if `n == 0` or if a trial panics.
pub fn run_trials_parallel<F>(base: SeedSeq, n: usize, threads: usize, f: F) -> TrialSet
where
    F: Fn(SeedSeq) -> f64 + Sync,
{
    TrialScheduler::new(threads).run_trials(base, n, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_get_distinct_seeds() {
        let set = run_trials(SeedSeq::new(5), 8, |seed| seed.value() as f64);
        let mut vals = set.values().to_vec();
        vals.dedup();
        assert_eq!(vals.len(), 8);
    }

    #[test]
    fn deterministic_across_runs() {
        let f = |seed: SeedSeq| seed.rng().gen_range(0.0..1.0);
        let a = run_trials(SeedSeq::new(3), 16, f);
        let b = run_trials(SeedSeq::new(3), 16, f);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_sequential() {
        let f = |seed: SeedSeq| seed.rng().gen_range(0.0..100.0);
        let seq = run_trials(SeedSeq::new(11), 13, f);
        for threads in [2, 4, 8, 32] {
            let par = run_trials_parallel(SeedSeq::new(11), 13, threads, f);
            assert_eq!(seq.values(), par.values(), "threads={threads}");
        }
    }

    #[test]
    fn single_thread_parallel_degrades() {
        let f = |seed: SeedSeq| seed.value() as f64;
        let seq = run_trials(SeedSeq::new(2), 5, f);
        let par = run_trials_parallel(SeedSeq::new(2), 5, 1, f);
        assert_eq!(seq.values(), par.values());
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = run_trials(SeedSeq::new(0), 0, |_| 0.0);
    }

    #[test]
    fn summary_reflects_values() {
        let set = run_trials(SeedSeq::new(1), 4, |s| (s.value() % 7) as f64);
        let expect = Summary::from_values(set.values().iter().copied()).unwrap();
        assert_eq!(*set.summary(), expect);
    }

    #[test]
    fn scheduler_commits_in_index_order() {
        // Stagger completions so high indices finish first; the
        // committer must still observe 0, 1, 2, ….
        let sched = TrialScheduler::new(4);
        let mut seen = Vec::new();
        sched.run_committed(
            16,
            |i| {
                std::thread::sleep(std::time::Duration::from_micros(((16 - i) * 200) as u64));
                i * 10
            },
            |i, v| seen.push((i, v)),
        );
        let expect: Vec<(usize, usize)> = (0..16).map(|i| (i, i * 10)).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn scheduler_run_is_thread_count_invariant() {
        let reference = TrialScheduler::serial().run(37, |i| i as u64 * 3 + 1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(
                TrialScheduler::new(threads).run(37, |i| i as u64 * 3 + 1),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn scheduler_handles_empty_and_tiny_inputs() {
        let sched = TrialScheduler::new(8);
        assert_eq!(sched.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(sched.run(1, |i| i + 41), vec![41]);
        assert_eq!(sched.run(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn zero_threads_selects_available_parallelism() {
        let sched = TrialScheduler::new(0);
        assert!(sched.threads() >= 1);
        assert_eq!(sched.run(5, |i| i), vec![0, 1, 2, 3, 4]);
    }
}
