//! Multi-trial experiment execution: a parallel scheduler with
//! deterministic, trial-index-ordered commit.
//!
//! The paper runs 4–16 trials per configuration and reports the spread
//! (Tables 7–10); the figure sweeps run dozens of configurations. Every
//! cell of that grid is an independent pure function of
//! `(config, base_seed, trial_index)` — the [`SeedSeq`] design guarantees
//! it — so the grid is embarrassingly parallel. [`TrialScheduler`] fans
//! cells out over a `std::thread` worker pool and a **committer** reorders
//! completions back into index order, so results are bit-identical
//! regardless of thread count. `threads == 1` takes a plain serial loop
//! with no thread, channel or heap machinery at all.

use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

use crate::{EmptySampleError, SeedSeq, Summary};

/// The outcome of a multi-trial experiment: raw values in trial order and
/// their summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSet {
    values: Vec<f64>,
    summary: Summary,
}

impl TrialSet {
    /// Per-trial measurements, indexed by trial number.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Summary statistics over the trials.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }
}

/// A completed job travelling from a worker to the committer, ordered so
/// a min-heap (`BinaryHeap<Completed<T>>` with reversed `Ord`) yields the
/// lowest outstanding index first.
struct Completed<T> {
    index: usize,
    value: T,
}

impl<T> PartialEq for Completed<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}

impl<T> Eq for Completed<T> {}

impl<T> PartialOrd for Completed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Completed<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest index.
        other.index.cmp(&self.index)
    }
}

/// How one trial attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The trial closure panicked; the payload's message is captured.
    Panic(String),
    /// The trial closure returned a typed error.
    Error(String),
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Panic(msg) => write!(f, "panic: {msg}"),
            FailureKind::Error(msg) => write!(f, "error: {msg}"),
        }
    }
}

/// A trial that exhausted its retry budget. Committed in place of the
/// trial's value, so a sweep degrades gracefully instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialFailure {
    /// Index of the failed trial.
    pub index: usize,
    /// Total attempts made (1 + retries).
    pub attempts: u32,
    /// Deterministic backoff units accumulated across the retries.
    /// Virtual units, never wall-clock — results stay bit-identical.
    pub backoff_units: u64,
    /// The last attempt's failure.
    pub kind: FailureKind,
}

impl fmt::Display for TrialFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trial {} failed after {} attempts ({})",
            self.index, self.attempts, self.kind
        )
    }
}

/// Bounded-retry policy with a capped deterministic backoff schedule.
///
/// Backoff is accounted in *virtual units* — the schedule is recorded
/// in [`FaultStats`] and [`TrialFailure`] but no thread ever sleeps, so
/// committed results carry no wall-clock dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per trial (first run + retries). Minimum 1.
    pub max_attempts: u32,
    /// Backoff units charged for retrying after attempt 0; doubles per
    /// attempt.
    pub backoff_base: u64,
    /// Ceiling on the per-retry backoff charge.
    pub backoff_cap: u64,
}

impl RetryPolicy {
    /// No retries: one attempt, failures are terminal.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: 0,
            backoff_cap: 0,
        }
    }

    /// Backoff units charged for retrying after `attempt` (0-based):
    /// `min(cap, base << attempt)`.
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.backoff_base
            .checked_mul(factor)
            .map_or(self.backoff_cap, |b| b.min(self.backoff_cap))
    }
}

impl Default for RetryPolicy {
    /// Three attempts, exponential 250/500/… capped at 4000 units.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: 250,
            backoff_cap: 4000,
        }
    }
}

/// Scheduler-level fault accounting for one resilient run. Every field
/// is a sum of per-`(index, attempt)` events, so the totals are
/// bit-identical for any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Attempts re-run after a failure (attempts beyond each trial's
    /// first).
    pub retries: u64,
    /// Worker panics caught by the engine.
    pub panics: u64,
    /// Attempts that returned a typed error.
    pub typed_failures: u64,
    /// Trials that exhausted their retry budget.
    pub failed_trials: u64,
    /// Workers respawned after a panic poisoned one. A panic always
    /// poisons its worker, so this equals `panics` by construction
    /// (the serial path re-enters the loop in place and counts the
    /// same).
    pub workers_respawned: u64,
    /// Total deterministic backoff units scheduled (virtual, never
    /// slept).
    pub backoff_units: u64,
    /// Trials this run actually drove to a terminal outcome — the
    /// scheduler's evidence of work performed. A resumed sweep counts
    /// only the remainder it computed; a fingerprint-cache hit that
    /// never enters the scheduler reports `0`.
    pub trials_computed: u64,
}

impl FaultStats {
    /// Whether the run saw no faults at all. `trials_computed` is
    /// work accounting, not a fault, so it does not participate.
    pub fn is_clean(&self) -> bool {
        let FaultStats {
            retries,
            panics,
            typed_failures,
            failed_trials,
            workers_respawned,
            backoff_units,
            trials_computed: _,
        } = *self;
        retries == 0
            && panics == 0
            && typed_failures == 0
            && failed_trials == 0
            && workers_respawned == 0
            && backoff_units == 0
    }

    /// Accumulates another run's accounting into this one — the
    /// service layer sums per-job stats into a queue-level report.
    pub fn merge(&mut self, other: &FaultStats) {
        self.retries += other.retries;
        self.panics += other.panics;
        self.typed_failures += other.typed_failures;
        self.failed_trials += other.failed_trials;
        self.workers_respawned += other.workers_respawned;
        self.backoff_units += other.backoff_units;
        self.trials_computed += other.trials_computed;
    }
}

/// Per-trial progress carried across retries: the attempt number being
/// run, typed failures so far and backoff accumulated so far.
#[derive(Debug, Clone, Copy, Default)]
struct Progress {
    attempt: u32,
    typed_failures: u32,
    backoff: u64,
}

/// What a worker reports to the committer.
enum Report<T> {
    /// Trial reached a terminal outcome (value or exhausted retries).
    Done {
        index: usize,
        outcome: Result<T, FailureKind>,
        progress: Progress,
    },
    /// The trial panicked; the sending worker has exited (poisoned).
    Panicked {
        index: usize,
        progress: Progress,
        message: String,
    },
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A worker pool that evaluates independent indexed jobs and commits
/// their results **in index order**.
///
/// The execution model is the classic dispatch-loop / worker-pool /
/// ordered-commit trio:
///
/// * **dispatch** — workers claim the next unclaimed index from a shared
///   atomic counter (dynamic load balancing; a slow cell never stalls
///   the queue behind a fixed chunk boundary);
/// * **execute** — each job runs independently; results flow back over an
///   `mpsc` channel;
/// * **commit** — the calling thread holds completions in a min-heap and
///   releases them strictly in index order, so observable output is
///   bit-identical for any worker count.
///
/// # Examples
///
/// ```
/// use tapeworm_stats::trials::TrialScheduler;
///
/// let serial = TrialScheduler::serial().run(4, |i| i * i);
/// let parallel = TrialScheduler::new(8).run(4, |i| i * i);
/// assert_eq!(serial, parallel);
/// assert_eq!(serial, vec![0, 1, 4, 9]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialScheduler {
    threads: usize,
}

impl TrialScheduler {
    /// A scheduler over `threads` workers. `0` selects the host's
    /// available parallelism; `1` is the exact serial loop.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        TrialScheduler { threads }
    }

    /// The exact serial path: one thread, no pool.
    pub fn serial() -> Self {
        TrialScheduler { threads: 1 }
    }

    /// Number of worker threads this scheduler uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates `job(0..n)` and returns the results indexed by job
    /// number. Output is identical for every thread count.
    pub fn run<T, F>(&self, n: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out = Vec::with_capacity(n);
        self.run_committed(n, job, |_, value| out.push(value));
        out
    }

    /// Evaluates `job(0..n)`, invoking `commit(index, value)` strictly in
    /// index order (0, 1, 2, …) as results become available.
    ///
    /// The commit callback runs on the calling thread, so it may hold
    /// `&mut` state (accumulate statistics, stream table rows) without
    /// synchronization, and sees exactly the sequence the serial loop
    /// would produce.
    pub fn run_committed<T, F, C>(&self, n: usize, job: F, commit: C)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FnMut(usize, T),
    {
        self.run_committed_stateful(n, || (), |(), i| job(i), commit);
    }

    /// [`run_committed`](Self::run_committed) with per-worker state.
    ///
    /// Each worker thread calls `init()` exactly once at spawn and
    /// passes its state to every job it runs (the serial path holds one
    /// state across the whole loop). This is the hook for reusing
    /// expensive per-trial allocations — a worker's scratch buffers
    /// survive from one trial to the next instead of being rebuilt.
    ///
    /// The state must not affect job results: which worker (and hence
    /// which state instance) runs an index depends on dynamic load
    /// balancing. Bit-identical output for every thread count therefore
    /// requires `job(&mut fresh, i) == job(&mut reused, i)` — true for
    /// scratch allocations by construction, and pinned for the trial
    /// engine by the fast-path differential tests.
    pub fn run_committed_stateful<S, T, I, F, C>(&self, n: usize, init: I, job: F, mut commit: C)
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
        C: FnMut(usize, T),
    {
        if n == 0 {
            return;
        }
        if self.threads == 1 {
            // The serial path is the reference semantics: compute and
            // commit in one loop, one long-lived state.
            let mut state = init();
            for i in 0..n {
                let v = job(&mut state, i);
                commit(i, v);
            }
            return;
        }

        let workers = self.threads.min(n);
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<Completed<T>>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let init = &init;
                let job = &job;
                scope.spawn(move || {
                    let mut state = init();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        let value = job(&mut state, index);
                        if tx.send(Completed { index, value }).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);

            // Deterministic committer: hold out-of-order completions in
            // a min-heap and release the head whenever it is the next
            // expected index.
            let mut pending = BinaryHeap::new();
            let mut next = 0usize;
            while next < n {
                let done = rx.recv().expect(
                    "a worker panicked before completing its trial; \
                     the experiment cannot be committed",
                );
                pending.push(done);
                while pending
                    .peek()
                    .is_some_and(|head: &Completed<T>| head.index == next)
                {
                    let head = pending.pop().expect("peeked entry exists");
                    commit(head.index, head.value);
                    next += 1;
                }
            }
        });
    }

    /// Fault-tolerant variant of [`run_committed`](Self::run_committed).
    ///
    /// Each attempt of `job(index, attempt)` runs under
    /// [`catch_unwind`], so a panicking trial poisons only its worker:
    /// the committer respawns a replacement and the trial is retried
    /// under `retry`'s budget with a capped deterministic backoff
    /// schedule (virtual units — nothing sleeps, so results carry no
    /// wall-clock). Typed errors (`Err(String)`) are retried in place
    /// by the same worker. A trial that exhausts its budget commits a
    /// [`TrialFailure`] instead of a value — the run completes and
    /// reports instead of aborting.
    ///
    /// `commit(index, outcome)` is still invoked strictly in index
    /// order on the calling thread, and both the committed sequence and
    /// the returned [`FaultStats`] are bit-identical for every thread
    /// count (every statistic is a sum over `(index, attempt)` events).
    pub fn run_committed_resilient<T, F, C>(
        &self,
        n: usize,
        retry: RetryPolicy,
        job: F,
        commit: C,
    ) -> FaultStats
    where
        T: Send,
        F: Fn(usize, u32) -> Result<T, String> + Sync,
        C: FnMut(usize, Result<T, TrialFailure>),
    {
        self.run_committed_resilient_stateful(n, retry, || (), |(), i, a| job(i, a), commit)
    }

    /// [`run_committed_resilient`](Self::run_committed_resilient) with
    /// per-worker state (see
    /// [`run_committed_stateful`](Self::run_committed_stateful)).
    ///
    /// Fault interaction: a panic may leave the worker's state
    /// arbitrarily corrupted, so it is discarded with the poisoned
    /// worker — the respawned replacement calls `init()` afresh (the
    /// serial path re-inits in place, keeping the accounting
    /// thread-count invariant). Typed errors retry on the same worker
    /// with the same state, exactly like a healthy next trial.
    pub fn run_committed_resilient_stateful<S, T, I, F, C>(
        &self,
        n: usize,
        retry: RetryPolicy,
        init: I,
        job: F,
        mut commit: C,
    ) -> FaultStats
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, u32) -> Result<T, String> + Sync,
        C: FnMut(usize, Result<T, TrialFailure>),
    {
        let max_attempts = retry.max_attempts.max(1);
        let mut stats = FaultStats::default();
        if n == 0 {
            return stats;
        }

        // Terminal bookkeeping shared by both paths: per-trial retries,
        // typed failures and backoff are accounted exactly once, when
        // the trial reaches a terminal outcome.
        let finish = |stats: &mut FaultStats,
                      index: usize,
                      progress: Progress,
                      outcome: Result<T, FailureKind>|
         -> Result<T, TrialFailure> {
            stats.retries += u64::from(progress.attempt);
            stats.typed_failures += u64::from(progress.typed_failures);
            stats.backoff_units += progress.backoff;
            stats.trials_computed += 1;
            outcome.map_err(|kind| {
                stats.failed_trials += 1;
                TrialFailure {
                    index,
                    attempts: progress.attempt + 1,
                    backoff_units: progress.backoff,
                    kind,
                }
            })
        };

        if self.threads == 1 {
            // Serial reference semantics: attempts loop in place. A
            // caught panic "poisons" the lone worker and the loop
            // re-enters immediately — counted as a respawn, and the
            // worker state is re-initialized in place, so the stats
            // (and state lifecycle) are thread-count invariant.
            let mut state = init();
            for index in 0..n {
                let mut progress = Progress::default();
                let outcome = loop {
                    match catch_unwind(AssertUnwindSafe(|| {
                        job(&mut state, index, progress.attempt)
                    })) {
                        Ok(Ok(v)) => break Ok(v),
                        Ok(Err(msg)) => {
                            progress.typed_failures += 1;
                            if progress.attempt + 1 >= max_attempts {
                                break Err(FailureKind::Error(msg));
                            }
                        }
                        Err(payload) => {
                            stats.panics += 1;
                            stats.workers_respawned += 1;
                            // The panic may have corrupted the state
                            // mid-trial; discard it like a poisoned
                            // worker's.
                            state = init();
                            if progress.attempt + 1 >= max_attempts {
                                break Err(FailureKind::Panic(panic_message(&*payload)));
                            }
                        }
                    }
                    progress.backoff += retry.backoff_for(progress.attempt);
                    progress.attempt += 1;
                };
                let outcome = finish(&mut stats, index, progress, outcome);
                commit(index, outcome);
            }
            return stats;
        }

        let workers = self.threads.min(n);
        let cursor = AtomicUsize::new(0);
        let retry_queue: Mutex<VecDeque<(usize, Progress)>> = Mutex::new(VecDeque::new());
        let (tx, rx) = mpsc::channel::<Report<T>>();
        std::thread::scope(|scope| {
            // One spawn per worker slot; also used to respawn after a
            // panic poisons a worker.
            let spawn_worker = |tx: mpsc::Sender<Report<T>>| {
                let cursor = &cursor;
                let retry_queue = &retry_queue;
                let init = &init;
                let job = &job;
                scope.spawn(move || {
                    // Fresh state per (re)spawn: a respawned worker
                    // never inherits a panicked predecessor's state.
                    let mut state = init();
                    loop {
                        // Queued retries take priority over fresh indices.
                        let work = retry_queue.lock().expect("retry queue").pop_front();
                        let (index, mut progress) = match work {
                            Some(w) => w,
                            None => {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    return;
                                }
                                (i, Progress::default())
                            }
                        };
                        loop {
                            match catch_unwind(AssertUnwindSafe(|| {
                                job(&mut state, index, progress.attempt)
                            })) {
                                Ok(Ok(v)) => {
                                    let _ = tx.send(Report::Done {
                                        index,
                                        outcome: Ok(v),
                                        progress,
                                    });
                                    break;
                                }
                                Ok(Err(msg)) => {
                                    // Typed errors retry in place; the
                                    // worker is not poisoned.
                                    progress.typed_failures += 1;
                                    if progress.attempt + 1 >= max_attempts {
                                        let _ = tx.send(Report::Done {
                                            index,
                                            outcome: Err(FailureKind::Error(msg)),
                                            progress,
                                        });
                                        break;
                                    }
                                    progress.backoff += retry.backoff_for(progress.attempt);
                                    progress.attempt += 1;
                                }
                                Err(payload) => {
                                    // A panic may have corrupted this
                                    // worker's stack-local state: report
                                    // and exit; the committer respawns.
                                    let _ = tx.send(Report::Panicked {
                                        index,
                                        progress,
                                        message: panic_message(&*payload),
                                    });
                                    return;
                                }
                            }
                        }
                    }
                });
            };
            for _ in 0..workers {
                spawn_worker(tx.clone());
            }

            let mut pending: BinaryHeap<Completed<Result<T, TrialFailure>>> = BinaryHeap::new();
            let mut next = 0usize;
            while next < n {
                let report = rx
                    .recv()
                    .expect("a worker exited without reporting its trial");
                match report {
                    Report::Done {
                        index,
                        outcome,
                        progress,
                    } => {
                        let value = finish(&mut stats, index, progress, outcome);
                        pending.push(Completed { index, value });
                    }
                    Report::Panicked {
                        index,
                        mut progress,
                        message,
                    } => {
                        stats.panics += 1;
                        stats.workers_respawned += 1;
                        if progress.attempt + 1 >= max_attempts {
                            let value = finish(
                                &mut stats,
                                index,
                                progress,
                                Err(FailureKind::Panic(message)),
                            );
                            pending.push(Completed { index, value });
                        } else {
                            progress.backoff += retry.backoff_for(progress.attempt);
                            progress.attempt += 1;
                            // Enqueue BEFORE spawning so the fresh
                            // worker can never miss the retry and exit.
                            retry_queue
                                .lock()
                                .expect("retry queue")
                                .push_back((index, progress));
                        }
                        // Always respawn: idle workers may already have
                        // exited, and unclaimed indices could otherwise
                        // strand the committer.
                        spawn_worker(tx.clone());
                    }
                }
                while pending
                    .peek()
                    .is_some_and(|head: &Completed<Result<T, TrialFailure>>| head.index == next)
                {
                    let head = pending.pop().expect("peeked entry exists");
                    commit(head.index, head.value);
                    next += 1;
                }
            }
            drop(tx);
        });
        stats
    }

    /// Runs `n` seeded trials of `f` and folds them into a [`TrialSet`].
    ///
    /// Trial `i` always receives `base.derive("trial", i)`, so the set is
    /// reproducible in isolation and identical for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`EmptySampleError`] when `n == 0` — an experiment with
    /// no trials has no summary.
    pub fn run_trials<F>(&self, base: SeedSeq, n: usize, f: F) -> Result<TrialSet, EmptySampleError>
    where
        F: Fn(SeedSeq) -> f64 + Sync,
    {
        let values = self.run(n, |i| f(base.derive("trial", i as u64)));
        let summary = Summary::from_values(values.iter().copied())?;
        Ok(TrialSet { values, summary })
    }
}

/// Runs `n` trials of `f` sequentially.
///
/// Each trial receives a [`SeedSeq`] derived as `base.derive("trial", i)`,
/// so trial `i` is reproducible in isolation.
///
/// # Errors
///
/// Returns [`EmptySampleError`] when `n == 0` — an experiment with no
/// trials has no summary.
pub fn run_trials<F>(base: SeedSeq, n: usize, mut f: F) -> Result<TrialSet, EmptySampleError>
where
    F: FnMut(SeedSeq) -> f64,
{
    let values: Vec<f64> = (0..n as u64).map(|i| f(base.derive("trial", i))).collect();
    let summary = Summary::from_values(values.iter().copied())?;
    Ok(TrialSet { values, summary })
}

/// Runs `n` trials of `f` across `threads` OS threads.
///
/// Results are bit-identical to [`run_trials`] (trial `i` always gets the
/// same derived seed, and the committer restores trial order); only
/// wall-clock time changes. `threads == 0` selects the available
/// parallelism; `1` degrades to the sequential path.
///
/// # Errors
///
/// Returns [`EmptySampleError`] when `n == 0`.
pub fn run_trials_parallel<F>(
    base: SeedSeq,
    n: usize,
    threads: usize,
    f: F,
) -> Result<TrialSet, EmptySampleError>
where
    F: Fn(SeedSeq) -> f64 + Sync,
{
    TrialScheduler::new(threads).run_trials(base, n, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_get_distinct_seeds() {
        let set = run_trials(SeedSeq::new(5), 8, |seed| seed.value() as f64).unwrap();
        let mut vals = set.values().to_vec();
        vals.dedup();
        assert_eq!(vals.len(), 8);
    }

    #[test]
    fn deterministic_across_runs() {
        let f = |seed: SeedSeq| seed.rng().gen_range(0.0..1.0);
        let a = run_trials(SeedSeq::new(3), 16, f);
        let b = run_trials(SeedSeq::new(3), 16, f);
        assert_eq!(a.unwrap(), b.unwrap());
    }

    #[test]
    fn parallel_matches_sequential() {
        let f = |seed: SeedSeq| seed.rng().gen_range(0.0..100.0);
        let seq = run_trials(SeedSeq::new(11), 13, f).unwrap();
        for threads in [2, 4, 8, 32] {
            let par = run_trials_parallel(SeedSeq::new(11), 13, threads, f).unwrap();
            assert_eq!(seq.values(), par.values(), "threads={threads}");
        }
    }

    #[test]
    fn single_thread_parallel_degrades() {
        let f = |seed: SeedSeq| seed.value() as f64;
        let seq = run_trials(SeedSeq::new(2), 5, f).unwrap();
        let par = run_trials_parallel(SeedSeq::new(2), 5, 1, f).unwrap();
        assert_eq!(seq.values(), par.values());
    }

    #[test]
    fn zero_trials_is_an_error_not_a_panic() {
        assert_eq!(
            run_trials(SeedSeq::new(0), 0, |_| 0.0),
            Err(EmptySampleError)
        );
        assert_eq!(
            run_trials_parallel(SeedSeq::new(0), 0, 4, |_| 0.0),
            Err(EmptySampleError)
        );
        assert_eq!(
            TrialScheduler::serial().run_trials(SeedSeq::new(0), 0, |_| 0.0),
            Err(EmptySampleError)
        );
    }

    #[test]
    fn summary_reflects_values() {
        let set = run_trials(SeedSeq::new(1), 4, |s| (s.value() % 7) as f64).unwrap();
        let expect = Summary::from_values(set.values().iter().copied()).unwrap();
        assert_eq!(*set.summary(), expect);
    }

    #[test]
    fn scheduler_commits_in_index_order() {
        // Stagger completions so high indices finish first; the
        // committer must still observe 0, 1, 2, ….
        let sched = TrialScheduler::new(4);
        let mut seen = Vec::new();
        sched.run_committed(
            16,
            |i| {
                std::thread::sleep(std::time::Duration::from_micros(((16 - i) * 200) as u64));
                i * 10
            },
            |i, v| seen.push((i, v)),
        );
        let expect: Vec<(usize, usize)> = (0..16).map(|i| (i, i * 10)).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn scheduler_run_is_thread_count_invariant() {
        let reference = TrialScheduler::serial().run(37, |i| i as u64 * 3 + 1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(
                TrialScheduler::new(threads).run(37, |i| i as u64 * 3 + 1),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn scheduler_handles_empty_and_tiny_inputs() {
        let sched = TrialScheduler::new(8);
        assert_eq!(sched.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(sched.run(1, |i| i + 41), vec![41]);
        assert_eq!(sched.run(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn zero_threads_selects_available_parallelism() {
        let sched = TrialScheduler::new(0);
        assert!(sched.threads() >= 1);
        assert_eq!(sched.run(5, |i| i), vec![0, 1, 2, 3, 4]);
    }

    /// A job that panics on given (index, attempt) pairs and errors on
    /// others; succeeds otherwise with a pure function of the index.
    fn faulty_job<'a>(
        panics: &'a [(usize, u32)],
        errors: &'a [(usize, u32)],
    ) -> impl Fn(usize, u32) -> Result<u64, String> + Sync + 'a {
        move |i, a| {
            if panics.contains(&(i, a)) {
                panic!("injected fault: trial {i} attempt {a}");
            }
            if errors.contains(&(i, a)) {
                return Err(format!("injected error: trial {i} attempt {a}"));
            }
            Ok(i as u64 * 7 + 1)
        }
    }

    fn run_resilient(
        threads: usize,
        n: usize,
        retry: RetryPolicy,
        panics: &[(usize, u32)],
        errors: &[(usize, u32)],
    ) -> (Vec<(usize, Result<u64, TrialFailure>)>, FaultStats) {
        let mut committed = Vec::new();
        let stats = TrialScheduler::new(threads).run_committed_resilient(
            n,
            retry,
            faulty_job(panics, errors),
            |i, v| committed.push((i, v)),
        );
        (committed, stats)
    }

    #[test]
    fn resilient_retries_panics_and_typed_errors_to_success() {
        for threads in [1, 4] {
            let (committed, stats) = run_resilient(
                threads,
                8,
                RetryPolicy::default(),
                &[(2, 0)],
                &[(5, 0), (5, 1)],
            );
            assert_eq!(committed.len(), 8, "threads={threads}");
            for (i, v) in &committed {
                assert_eq!(v.as_ref().unwrap(), &(*i as u64 * 7 + 1));
            }
            assert_eq!(stats.panics, 1, "threads={threads}");
            assert_eq!(stats.workers_respawned, 1);
            assert_eq!(stats.typed_failures, 2);
            assert_eq!(stats.retries, 3);
            assert_eq!(stats.failed_trials, 0);
            // 250 (trial 2 attempt 0) + 250 + 500 (trial 5).
            assert_eq!(stats.backoff_units, 1000);
        }
    }

    #[test]
    fn resilient_exhausted_budget_degrades_gracefully() {
        // Trial 3 panics on every attempt; the run still completes and
        // commits a TrialFailure in order.
        for threads in [1, 3] {
            let panics: Vec<(usize, u32)> = (0..3).map(|a| (3usize, a)).collect();
            let (committed, stats) =
                run_resilient(threads, 6, RetryPolicy::default(), &panics, &[]);
            assert_eq!(committed.len(), 6, "threads={threads}");
            assert_eq!(
                committed.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
                (0..6).collect::<Vec<_>>()
            );
            let failure = committed[3].1.as_ref().unwrap_err();
            assert_eq!(failure.index, 3);
            assert_eq!(failure.attempts, 3);
            assert!(matches!(&failure.kind, FailureKind::Panic(m) if m.contains("trial 3")));
            assert_eq!(stats.failed_trials, 1);
            assert_eq!(stats.panics, 3);
            assert_eq!(stats.workers_respawned, 3);
        }
    }

    #[test]
    fn resilient_stats_and_commits_are_thread_count_invariant() {
        let panics = [(1usize, 0u32), (6, 0), (6, 1)];
        let errors = [(4usize, 0u32)];
        let (reference, ref_stats) = run_resilient(1, 12, RetryPolicy::default(), &panics, &errors);
        for threads in [2, 4, 8] {
            let (committed, stats) =
                run_resilient(threads, 12, RetryPolicy::default(), &panics, &errors);
            assert_eq!(committed, reference, "threads={threads}");
            assert_eq!(stats, ref_stats, "threads={threads}");
        }
        assert!(!ref_stats.is_clean());
    }

    #[test]
    fn resilient_without_faults_matches_run_committed() {
        for threads in [1, 4] {
            let mut plain = Vec::new();
            TrialScheduler::new(threads).run_committed(9, |i| i * 2, |i, v| plain.push((i, v)));
            let mut resilient = Vec::new();
            let stats = TrialScheduler::new(threads).run_committed_resilient(
                9,
                RetryPolicy::none(),
                |i, _attempt| Ok::<usize, String>(i * 2),
                |i, v| resilient.push((i, v.unwrap())),
            );
            assert_eq!(plain, resilient, "threads={threads}");
            assert!(stats.is_clean());
        }
    }

    #[test]
    fn fault_stats_count_work_and_merge() {
        let (_, stats) = run_resilient(1, 5, RetryPolicy::none(), &[], &[]);
        assert_eq!(stats.trials_computed, 5);
        assert!(stats.is_clean(), "work accounting is not a fault");
        let (_, par) = run_resilient(4, 5, RetryPolicy::none(), &[], &[]);
        assert_eq!(par.trials_computed, 5, "thread-count invariant");
        let mut total = FaultStats::default();
        total.merge(&stats);
        total.merge(&par);
        assert_eq!(total.trials_computed, 10);
        assert!(total.is_clean());
    }

    #[test]
    fn retry_policy_backoff_is_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff_base: 100,
            backoff_cap: 350,
        };
        assert_eq!(p.backoff_for(0), 100);
        assert_eq!(p.backoff_for(1), 200);
        assert_eq!(p.backoff_for(2), 350);
        assert_eq!(p.backoff_for(63), 350);
        assert_eq!(p.backoff_for(64), 350, "shift overflow must hit the cap");
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }
}
