//! Statistics and deterministic-randomness utilities for the Tapeworm II
//! reproduction.
//!
//! The Tapeworm paper (ASPLOS 1994) reports nearly all of its results as
//! *multi-trial* statistics: mean miss counts, standard deviation `s`,
//! minima, maxima and ranges expressed as percentages of the mean
//! (Tables 7–10). This crate provides:
//!
//! * [`Summary`] / [`OnlineStats`] — the exact summary shape those tables
//!   use, computed with Welford's numerically stable online algorithm.
//! * [`ci`] — Student-t confidence intervals for trial means, the sweep
//!   planner's adaptive stopping rule.
//! * [`Zipf`] — a Zipf-distributed sampler used by the synthetic workload
//!   models to pick "procedures" with realistic popularity skew.
//! * [`Rng`] — a small, dependency-free SplitMix64 generator providing the
//!   whole RNG surface the reproduction uses (`next_u64`, `gen_range`,
//!   `shuffle`, uniform `f64`), so the workspace builds offline.
//! * [`SeedSeq`] — deterministic per-trial/per-stream seed derivation so
//!   every experiment is reproducible from one base seed.
//! * [`trials`] — the parallel trial scheduler: experiment trials fan out
//!   over a worker pool and a deterministic committer folds the per-trial
//!   measurements back in trial order.
//! * [`table`] — a plain-text table builder shared by the benchmark
//!   binaries that regenerate the paper's tables and figures.
//!
//! # Examples
//!
//! ```
//! use tapeworm_stats::Summary;
//!
//! let s = Summary::from_values([4.11e6, 4.26e6, 4.19e6]).unwrap();
//! assert!((s.mean() - 4.1866e6).abs() < 1e3);
//! assert!(s.min() <= s.mean() && s.mean() <= s.max());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod online;
mod rng;
mod summary;
mod zipf;

pub mod ci;
pub mod seed;
pub mod table;
pub mod trials;

pub use ci::{mean_ci, mean_ci_from_parts, student_t_critical, MeanCi};
pub use online::OnlineStats;
pub use rng::{Rng, Sample, SampleRange};
pub use seed::SeedSeq;
pub use summary::{EmptySampleError, Summary};
pub use zipf::{Zipf, ZipfError};
