//! Plain-text table rendering for the experiment binaries.
//!
//! Every benchmark binary regenerates one paper table or figure as an
//! aligned plain-text table on stdout. This module is a tiny, dependency-
//! free table builder shared by all of them.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (labels).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// An incrementally built plain-text table.
///
/// # Examples
///
/// ```
/// use tapeworm_stats::table::{Align, Table};
///
/// let mut t = Table::new(vec!["Cache".into(), "Miss Ratio".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["1K".into(), "0.118".into()]);
/// t.row(vec!["32K".into(), "0.002".into()]);
/// let text = t.to_string();
/// assert!(text.contains("Cache"));
/// assert!(text.contains("0.118"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: Option<String>,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        let aligns = vec![Align::Left; headers.len()];
        Table {
            title: None,
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets an optional title printed above the table.
    pub fn title(&mut self, title: impl Into<String>) -> &mut Self {
        self.title = Some(title.into());
        self
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Right-aligns every column except the first (the common layout for
    /// label + numbers tables).
    pub fn numeric(&mut self) -> &mut Self {
        for a in self.aligns.iter_mut().skip(1) {
            *a = Align::Right;
        }
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        if let Some(title) = &self.title {
            writeln!(f, "{title}")?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    f.write_str("  ")?;
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                match self.aligns[i] {
                    Align::Left => {
                        f.write_str(cell)?;
                        if i + 1 < ncols {
                            write!(f, "{:pad$}", "", pad = pad)?;
                        }
                    }
                    Align::Right => {
                        write!(f, "{:pad$}{}", "", cell, pad = pad)?;
                    }
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Renders one or two data series as a rough ASCII line chart, for the
/// experiment binaries that regenerate the paper's *figures*.
///
/// `series` pairs a label with y-values; all series share `x_labels`.
/// Values are scaled to the tallest point across all series.
///
/// # Panics
///
/// Panics if a series' length differs from `x_labels`.
///
/// # Examples
///
/// ```
/// use tapeworm_stats::table::ascii_chart;
///
/// let chart = ascii_chart(
///     &["1K", "4K", "16K"],
///     &[("tapeworm", vec![6.4, 4.6, 2.4]), ("cache2000", vec![26.5, 25.2, 23.2])],
///     20,
/// );
/// assert!(chart.contains("tapeworm"));
/// ```
pub fn ascii_chart(x_labels: &[&str], series: &[(&str, Vec<f64>)], width: usize) -> String {
    let mut out = String::new();
    let max = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .fold(f64::MIN, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = x_labels.iter().map(|l| l.len()).max().unwrap_or(1);
    for (name, ys) in series {
        assert_eq!(ys.len(), x_labels.len(), "series length mismatch");
        out.push_str(&format!("{name}\n"));
        for (x, y) in x_labels.iter().zip(ys) {
            let bar = "▮".repeat(((y / max) * width as f64).round() as usize);
            out.push_str(&format!("  {x:>label_w$} |{bar} {y:.2}\n"));
        }
    }
    out
}

/// Formats a count in millions with two decimals, e.g. `37.63`.
pub fn millions(x: f64) -> String {
    format!("{:.2}", x / 1.0e6)
}

/// Formats a ratio with three decimals in parentheses, e.g. `(0.027)`.
pub fn ratio(x: f64) -> String {
    format!("({x:.3})")
}

/// Formats a percentage with no decimals in parentheses, e.g. `(57%)`.
pub fn pct(x: f64) -> String {
    format!("({x:.0}%)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "value".into()]);
        t.numeric();
        t.row(vec!["row-one".into(), "1".into()]);
        t.row(vec!["r2".into(), "1234".into()]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // Numbers right-aligned: both value cells end at same column.
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].ends_with("1234"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn title_appears_first() {
        let mut t = Table::new(vec!["x".into()]);
        t.title("Figure 2");
        t.row(vec!["1".into()]);
        assert!(t.to_string().starts_with("Figure 2\n"));
    }

    #[test]
    fn ascii_chart_scales_to_the_tallest_series() {
        let chart = ascii_chart(
            &["a", "b"],
            &[("one", vec![1.0, 2.0]), ("two", vec![4.0, 0.0])],
            8,
        );
        // The 4.0 point gets the full width; the 1.0 point a quarter.
        assert!(chart.contains(&"▮".repeat(8)));
        assert!(chart.contains(&format!("a |{} 1.00", "▮".repeat(2))));
        assert!(chart.lines().count() >= 6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ascii_chart_rejects_ragged_series() {
        let _ = ascii_chart(&["a"], &[("x", vec![1.0, 2.0])], 4);
    }

    #[test]
    fn helpers_format_like_the_paper() {
        assert_eq!(millions(37_630_000.0), "37.63");
        assert_eq!(ratio(0.0274), "(0.027)");
        assert_eq!(pct(57.2), "(57%)");
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new(vec!["x".into()]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
