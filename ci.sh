#!/usr/bin/env bash
# Offline CI gate. No network, no registry: the workspace has zero
# external dependencies, so this must pass on a bare toolchain.
#
#   1. Formatting: `cargo fmt --check` over the whole workspace.
#   2. Release build of the whole workspace.
#   3. Full test suite (unit + doc + the cross-crate integration tests
#      in tests/: paper_claims, full_system, exact_hardware,
#      failure_injection, determinism, invariants).
#   4. Warnings are errors across the entire workspace, all targets.
#   5. Gate run of the throughput harness: results/BENCH.json must
#      exist, carry the keys downstream tooling reads, and its
#      single-thread refs/sec must be within 15% of the checked-in
#      results/BENCH_baseline.json (slowdowns fail; speedups pass —
#      re-baseline deliberately by copying BENCH.json over the
#      baseline). The same 15% tolerance then applies to every
#      `per_config` entry individually, so a regression on one config
#      (say, the miss-heavy cache-4k) cannot hide behind a speedup on
#      another.
#   6. Thread-scaling gate: on a multi-core host, two workers must be
#      at least 1.2x one worker. On a single core, speedup is
#      physically impossible and any floor would be theatre, so the
#      gate SKIPS with an explicit annotation instead of pretending.
#   7. results/METRICS.json (the tapeworm-metrics-v1 observability
#      export) must exist and carry every schema key, including the
#      miss-batch effectiveness counters (miss_batch_flushes,
#      victim_memo_hits).
#   7b. Trapset microbench (feature-gated): build with
#      `--features microbench`, run it, and check the
#      tapeworm-microbench-v1 artifact is well-formed. Informational —
#      the per-op numbers are recorded, not gated.
#   7c. Memory-footprint gate: a smoke sweep over 64 GiB of simulated
#      physical memory must complete with max RSS under the ceiling
#      checked into perf_throughput (--large-mem). Only possible on the
#      sparse demand-allocated backing; a dense trap bitmap at that
#      size would be gigabytes. SKIPs honestly where /proc/self/status
#      has no VmHWM.
#   8. Sweep-service smoke: submit specs/ci_smoke.toml, drain it
#      through the subprocess worker backend, gate the digest against
#      the golden pin (also pinned in tests/server_e2e.rs and
#      crates/server/tests/server_e2e.rs), re-run for a fingerprint
#      cache hit with the identical digest, and validate the JSONL run
#      sink's metrics lines against the tapeworm-metrics-v1 schema.
#   9. Sparse/dense differential gate: the same service smoke spec run
#      with TW_SPARSE=0 (dense) and TW_SPARSE=1 (sparse), both against
#      fresh queues so neither can hit the fingerprint cache, must both
#      land on the golden digest — the backing layout is load-bearing
#      for footprint, never for results.
#  10. Sweep-planner differential gate: specs/ci_planner.toml (pruned)
#      and specs/ci_planner_full.toml (the identical grid, planner off)
#      drained through the service. The pruned run must actually save
#      trials, every one of its trial records must appear verbatim in
#      the full twin's sink (simulated cells are ground truth, never
#      perturbed by pruning), its sink must tag estimates with
#      provenance (`estimated: true`, `model: kessler-v1`) and carry
#      the planner counters, and `TW_PLAN=0` must force the full
#      engine. Then `perf_throughput --plan` gates the ≥2x trial
#      saving and the declared interpolation error bound on a 24-cell
#      sweep.
set -euo pipefail
cd "$(dirname "$0")"

echo "=== tier 1: formatting ==="
cargo fmt --all --check

echo "=== tier 1: release build ==="
cargo build --release --workspace

echo "=== tier 1: test suite (offline) ==="
cargo test -q --workspace

echo "=== tier 2: warnings-as-errors (workspace, all targets) ==="
RUSTFLAGS="-D warnings" cargo check -q --workspace --all-targets
RUSTFLAGS="-D warnings" cargo check -q -p tapeworm-bench --features microbench --all-targets
RUSTFLAGS="-D warnings" cargo check -q -p tapeworm-core --features sched-fuzz --all-targets

echo "=== tier 2: miss-schedule signature fuzz (dependency-free) ==="
# SplitMix64-perturbed entry states must never replay a schedule
# recorded under different state — the honesty core of the
# set-state/miss-schedule layer (crates/core/tests/sched_fuzz.rs).
cargo test -q --release -p tapeworm-core --features sched-fuzz --test sched_fuzz

echo "=== tier 2: perf_throughput gate run ==="
./target/release/perf_throughput --gate
test -s results/BENCH.json || { echo "ci.sh: results/BENCH.json missing or empty" >&2; exit 1; }
for key in schema per_config runs host_cpus scaling_status scaling two_thread_refs_per_sec \
           two_thread_speedup single_thread_refs_per_sec speedup_vs_baseline \
           large_mem_bytes sparse_rss_bytes sparse_chunks_allocated chunk_faults \
           trap_entries ns_per_miss; do
  grep -q "\"$key\"" results/BENCH.json || {
    echo "ci.sh: results/BENCH.json lacks \"$key\"" >&2; exit 1;
  }
done
# Single-cpu honesty: when the harness declared the scaling ladder
# SKIPPED, every multi-thread runs/scaling entry must carry the
# "informational": true tag (and on a real multi-core host none may).
if grep -q '"scaling_status": "SKIPPED' results/BENCH.json; then
  grep -q '"informational": true' results/BENCH.json || {
    echo "ci.sh: scaling SKIPPED but no entry tagged \"informational\"" >&2; exit 1;
  }
else
  if grep -q '"informational": true' results/BENCH.json; then
    echo "ci.sh: multi-core host but entries tagged \"informational\"" >&2; exit 1;
  fi
fi

echo "=== tier 2: bench regression gate (15% tolerance) ==="
if [ -s results/BENCH_baseline.json ]; then
  current=$(grep -o '"single_thread_refs_per_sec": *[0-9.]*' results/BENCH.json | grep -o '[0-9.]*$')
  base=$(grep -o '"single_thread_refs_per_sec": *[0-9.]*' results/BENCH_baseline.json | grep -o '[0-9.]*$')
  awk -v c="$current" -v b="$base" 'BEGIN {
    if (c == "" || b == "" || b + 0 == 0) {
      print "ci.sh: could not parse single_thread_refs_per_sec" > "/dev/stderr"; exit 1
    }
    delta = 100 * (c / b - 1)
    if (c < b * 0.85) {
      printf "ci.sh: bench regression: %.0f refs/sec is %.1f%% below baseline %.0f (tolerance 15%%)\n", c, delta, b > "/dev/stderr"
      exit 1
    }
    printf "ci.sh: bench gate ok: %.0f refs/sec vs baseline %.0f (%+.1f%%)\n", c, b, delta
  }'
else
  echo "ci.sh: no results/BENCH_baseline.json — skipping regression compare" >&2
fi

echo "=== tier 2: per-config bench regression gate (15% tolerance) ==="
if [ -s results/BENCH_baseline.json ]; then
  awk '
    FNR == 1 { file++ }
    /"config":/ {
      match($0, /"config": *"[^"]*"/)
      name = substr($0, RSTART + 11, RLENGTH - 12)
      match($0, /"refs_per_sec": *[0-9.]*/)
      rps = substr($0, RSTART + 16, RLENGTH - 16) + 0
      if (file == 1) { base[name] = rps } else { cur[name] = rps }
    }
    END {
      status = 0
      for (name in base) {
        if (!(name in cur)) {
          printf "ci.sh: per-config gate: baseline config %s missing from BENCH.json\n", \
            name > "/dev/stderr"
          status = 1
          continue
        }
        delta = 100 * (cur[name] / base[name] - 1)
        if (cur[name] < base[name] * 0.85) {
          printf "ci.sh: per-config regression: %s %.0f refs/sec is %.1f%% below baseline %.0f (tolerance 15%%)\n", \
            name, cur[name], delta, base[name] > "/dev/stderr"
          status = 1
        } else {
          printf "ci.sh: per-config gate ok: %-12s %.0f refs/sec vs baseline %.0f (%+.1f%%)\n", \
            name, cur[name], base[name], delta
        }
      }
      exit status
    }' results/BENCH_baseline.json results/BENCH.json
else
  echo "ci.sh: no results/BENCH_baseline.json — skipping per-config compare" >&2
fi

echo "=== tier 2: thread-scaling gate ==="
cpus=$(grep -o '"host_cpus": *[0-9]*' results/BENCH.json | grep -o '[0-9]*$')
two=$(grep -o '"two_thread_speedup": *[0-9.]*' results/BENCH.json | grep -o '[0-9.]*$')
awk -v cpus="$cpus" -v two="$two" 'BEGIN {
  if (cpus == "" || two == "") {
    print "ci.sh: could not parse host_cpus / two_thread_speedup" > "/dev/stderr"; exit 1
  }
  if (cpus + 0 < 2) {
    # A speedup floor on one core would gate on scheduler noise, not on
    # the engine. Skip honestly and loudly rather than asserting a
    # made-up number.
    printf "ci.sh: scaling gate SKIPPED: host has %d cpu(s); a 2-thread speedup floor is meaningless without a second core (measured %.3fx, informational only)\n", cpus, two
    exit 0
  }
  floor = 1.2
  if (two + 0 < floor) {
    printf "ci.sh: scaling regression: 2-thread speedup %.3fx below %.1fx floor (host_cpus=%d)\n", two, floor, cpus > "/dev/stderr"
    exit 1
  }
  printf "ci.sh: scaling gate ok: 2-thread speedup %.3fx (host_cpus=%d, floor %.1fx)\n", two, cpus, floor
}'

echo "=== tier 2: METRICS.json schema gate ==="
test -s results/METRICS.json || { echo "ci.sh: results/METRICS.json missing or empty" >&2; exit 1; }
for key in schema source mode per_config totals counters phases dilation slowdown trap_events \
           trap_entries traps_set traps_cleared tcache_hits tcache_misses page_walks \
           breakpoint_checks sched_quanta trial_retries trial_panics trials_failed \
           workers_respawned clock_ticks_dropped fast_runs fast_words \
           miss_batch_flushes victim_memo_hits \
           sched_replays sched_records sched_sig_misses \
           sparse_chunks_allocated zero_chunks_deduped chunk_faults \
           user kernel handler replacement recorded dropped; do
  grep -q "\"$key\"" results/METRICS.json || {
    echo "ci.sh: results/METRICS.json lacks \"$key\"" >&2; exit 1;
  }
done
grep -q '"schema": "tapeworm-metrics-v1"' results/METRICS.json || {
  echo "ci.sh: results/METRICS.json has wrong schema id" >&2; exit 1;
}

echo "=== tier 2: trapset microbench (informational) ==="
# Feature-gated off the default build; CI builds and runs it so the
# tapeworm-microbench-v1 artifact stays well-formed and the per-op
# trapset costs are recorded alongside BENCH.json. Informational: the
# schema is gated, the numbers are not.
cargo build -q --release -p tapeworm-bench --features microbench
./target/release/microbench_trapset
test -s results/MICROBENCH.json || { echo "ci.sh: results/MICROBENCH.json missing or empty" >&2; exit 1; }
grep -q '"schema": "tapeworm-microbench-v1"' results/MICROBENCH.json || {
  echo "ci.sh: results/MICROBENCH.json has wrong schema id" >&2; exit 1;
}

echo "=== tier 2: miss-path microbench (informational) ==="
# Decomposes the per-miss service cost: stepwise handler vs set-state
# burst (recording) vs miss-schedule replay, plus the signature
# verification and table-lookup primitives. Informational like the
# trapset microbench: the tapeworm-microbench-v1 schema is gated, the
# host-local nanoseconds are not.
./target/release/microbench_miss
test -s results/MICROBENCH_MISS.json || { echo "ci.sh: results/MICROBENCH_MISS.json missing or empty" >&2; exit 1; }
grep -q '"schema": "tapeworm-microbench-v1"' results/MICROBENCH_MISS.json || {
  echo "ci.sh: results/MICROBENCH_MISS.json has wrong schema id" >&2; exit 1;
}

echo "=== tier 2: memory-footprint gate (64 GiB simulated, sparse backing) ==="
# The large-address-space smoke: 64 GiB of simulated physical memory
# must fit in the RSS ceiling checked into perf_throughput
# (LARGE_MEM_RSS_CEILING_BYTES, override with TW_RSS_CEILING). The
# binary prints PASS/FAIL/SKIP and exits nonzero on FAIL; SKIP (no
# VmHWM on this host) is an honest non-measurement, not a pass.
./target/release/perf_throughput --large-mem

echo "=== tier 2: chaos gate (fault-tolerant sweep engine) ==="
# Fixed fault seed, fixed scenario: injected panics, hangs, a simulated
# mid-run kill + resume and a failed checkpoint write must all converge
# on the fault-free digest. The golden value is pinned in
# tests/determinism.rs (CHAOS_GOLDEN_DIGEST); regenerate both together.
CHAOS_GOLDEN_DIGEST="0x76fee05ac899b1d3"
./target/release/chaos_sweep | tee results/chaos_sweep.txt
grep -q "digest: $CHAOS_GOLDEN_DIGEST" results/chaos_sweep.txt || {
  echo "ci.sh: chaos_sweep digest does not match golden $CHAOS_GOLDEN_DIGEST" >&2; exit 1;
}
test -s results/METRICS_chaos.json || {
  echo "ci.sh: results/METRICS_chaos.json missing or empty" >&2; exit 1;
}

echo "=== tier 2: sweep-service smoke (subprocess worker + fingerprint cache) ==="
# The service digest must be bit-identical across backends, thread
# counts and cached-vs-fresh serving. Golden value also pinned in
# tests/server_e2e.rs and crates/server/tests/server_e2e.rs
# (CI_SMOKE_GOLDEN_DIGEST); regenerate all three together via
# `./target/release/golden_digest`.
SERVICE_GOLDEN_DIGEST="0x279118467b9c2732"
rm -rf results/ci_queue
./target/release/tapeworm-server submit --queue results/ci_queue specs/ci_smoke.toml
./target/release/tapeworm-server run --queue results/ci_queue --backend subprocess \
  | tee results/server_smoke.txt
grep -q "from_cache=false" results/server_smoke.txt || {
  echo "ci.sh: first service run unexpectedly hit the cache" >&2; exit 1;
}
grep -q "digest=$SERVICE_GOLDEN_DIGEST" results/server_smoke.txt || {
  echo "ci.sh: service digest does not match golden $SERVICE_GOLDEN_DIGEST" >&2; exit 1;
}
# Identical spec again: served from the fingerprint cache, same digest.
./target/release/tapeworm-server once --queue results/ci_queue specs/ci_smoke.toml \
  | tee results/server_smoke_cached.txt
grep -q "from_cache=true" results/server_smoke_cached.txt || {
  echo "ci.sh: identical spec was not served from the fingerprint cache" >&2; exit 1;
}
grep -q "digest=$SERVICE_GOLDEN_DIGEST" results/server_smoke_cached.txt || {
  echo "ci.sh: cached service digest diverged from golden" >&2; exit 1;
}
# The JSONL run sink must carry the run schema, the checkpoint-codec
# trial records, and tapeworm-metrics-v1 metrics lines.
sink=results/ci_queue/jobs/000001/result.jsonl
test -s "$sink" || { echo "ci.sh: $sink missing or empty" >&2; exit 1; }
grep -q '"schema": "tapeworm-server-run-v1"' "$sink" || {
  echo "ci.sh: run sink lacks tapeworm-server-run-v1 header" >&2; exit 1;
}
grep -q '"record": "trial"' "$sink" || {
  echo "ci.sh: run sink lacks trial records" >&2; exit 1;
}
metrics_line=$(grep '"record": "metrics"' "$sink" | head -1)
for key in schema counters phases dilation slowdown trap_events recorded dropped \
           trap_entries miss_batch_flushes victim_memo_hits \
           sparse_chunks_allocated zero_chunks_deduped chunk_faults \
           user kernel handler replacement; do
  echo "$metrics_line" | grep -q "\"$key\"" || {
    echo "ci.sh: run-sink metrics line lacks \"$key\"" >&2; exit 1;
  }
done
echo "$metrics_line" | grep -q '"schema": "tapeworm-metrics-v1"' || {
  echo "ci.sh: run-sink metrics line has wrong schema id" >&2; exit 1;
}
grep -q "\"digest\": \"$SERVICE_GOLDEN_DIGEST\"" "$sink" || {
  echo "ci.sh: run-sink digest footer does not match golden" >&2; exit 1;
}

echo "=== tier 2: sparse/dense differential gate ==="
# Same smoke spec, both backings, fresh queues each time so neither
# run can be served from the fingerprint cache: the sparse layout must
# be invisible in the results. Any digest drift here means a chunk
# boundary leaked into simulation state.
for sparse in 0 1; do
  queue="results/ci_queue_sparse$sparse"
  out="results/server_smoke_sparse$sparse.txt"
  rm -rf "$queue"
  TW_SPARSE=$sparse ./target/release/tapeworm-server once --queue "$queue" \
    specs/ci_smoke.toml | tee "$out"
  grep -q "from_cache=false" "$out" || {
    echo "ci.sh: TW_SPARSE=$sparse differential run unexpectedly hit the cache" >&2; exit 1;
  }
  grep -q "digest=$SERVICE_GOLDEN_DIGEST" "$out" || {
    echo "ci.sh: TW_SPARSE=$sparse digest diverged from golden $SERVICE_GOLDEN_DIGEST" >&2; exit 1;
  }
done
echo "ci.sh: sparse and dense backings agree on $SERVICE_GOLDEN_DIGEST"

echo "=== tier 2: sweep-planner differential gate ==="
# The pruned spec and its full twin share one queue (their fingerprints
# differ, so neither can alias the other in the cache): job 000001 is
# the full ground truth, job 000002 the planner run.
pqueue=results/ci_queue_planner
rm -rf "$pqueue"
./target/release/tapeworm-server once --queue "$pqueue" specs/ci_planner_full.toml \
  | tee results/server_planner_full.txt
./target/release/tapeworm-server once --queue "$pqueue" specs/ci_planner.toml \
  | tee results/server_planner.txt
grep -q "plan=full" results/server_planner_full.txt || {
  echo "ci.sh: full twin did not run with plan=full" >&2; exit 1;
}
grep -q "plan=pruned" results/server_planner.txt || {
  echo "ci.sh: planner spec did not run with plan=pruned" >&2; exit 1;
}
grep -q "from_cache=false" results/server_planner.txt || {
  echo "ci.sh: pruned run must never be served from the cache" >&2; exit 1;
}
grep -Eq "trials_saved=[1-9]" results/server_planner.txt || {
  echo "ci.sh: planner saved no trials on the 6-point ladder" >&2; exit 1;
}
grep -Eq "cells_interpolated=[1-9]" results/server_planner.txt || {
  echo "ci.sh: planner interpolated no cells on the 6-point ladder" >&2; exit 1;
}
fsink="$pqueue/jobs/000001/result.jsonl"
psink="$pqueue/jobs/000002/result.jsonl"
test -s "$fsink" && test -s "$psink" || {
  echo "ci.sh: planner gate sinks missing" >&2; exit 1;
}
# Honest provenance in the pruned sink: interpolated cells are tagged
# estimates with their model named, simulated metrics carry the
# opposite tag, and the planner record reports all four counters.
for needle in '"record": "cell"' '"provenance": "interpolated"' '"estimated": true' \
              '"model": "kessler-v1"' '"provenance": "simulated"' '"estimated": false' \
              '"record": "planner"' '"plan": "pruned"' '"cells_simulated"' \
              '"cells_interpolated"' '"trials_saved"' '"ci_early_stops"' '"miss_bound"'; do
  grep -qF "$needle" "$psink" || {
    echo "ci.sh: pruned run sink lacks $needle" >&2; exit 1;
  }
done
# Every trap-simulated trial record of the pruned run must appear
# verbatim (byte-identical line) in the full twin's sink, and there
# must be strictly fewer of them: pruning means fewer trials, never
# different ones.
grep '"record": "trial"' "$fsink" > results/planner_trials_full.txt
grep '"record": "trial"' "$psink" > results/planner_trials_pruned.txt
if grep -Fxvf results/planner_trials_full.txt results/planner_trials_pruned.txt \
    > results/planner_trials_foreign.txt; then
  echo "ci.sh: pruned sink contains trial records absent from the full sweep:" >&2
  cat results/planner_trials_foreign.txt >&2
  exit 1
fi
full_n=$(wc -l < results/planner_trials_full.txt)
pruned_n=$(wc -l < results/planner_trials_pruned.txt)
if [ "$pruned_n" -ge "$full_n" ] || [ "$pruned_n" -eq 0 ]; then
  echo "ci.sh: planner gate: expected 0 < pruned trials < full trials, got $pruned_n vs $full_n" >&2
  exit 1
fi
echo "ci.sh: planner simulated $pruned_n of $full_n trials, all verbatim-identical to the full sweep"
# The kill switch: TW_PLAN=0 must force the pruned spec down the full
# path — and, being keyed on the effective mode, hit the full twin's
# cache entry with the identical digest.
TW_PLAN=0 ./target/release/tapeworm-server once --queue "$pqueue" specs/ci_planner.toml \
  | tee results/server_planner_killswitch.txt
grep -q "plan=full" results/server_planner_killswitch.txt || {
  echo "ci.sh: TW_PLAN=0 did not force the full engine" >&2; exit 1;
}
grep -q "from_cache=true" results/server_planner_killswitch.txt || {
  echo "ci.sh: TW_PLAN=0 run should hit the full twin's cache entry" >&2; exit 1;
}
full_digest=$(grep -o 'digest=0x[0-9a-f]*' results/server_planner_full.txt | head -1)
grep -q "$full_digest" results/server_planner_killswitch.txt || {
  echo "ci.sh: TW_PLAN=0 digest diverged from the full twin" >&2; exit 1;
}
# The planner perf gate: >=2x fewer trap-simulated trials on a 24-cell
# sweep, every interpolated cell within its declared error bound.
./target/release/perf_throughput --plan

echo "ci.sh: all gates passed"
