#!/usr/bin/env bash
# Offline CI gate. No network, no registry: the workspace has zero
# external dependencies, so this must pass on a bare toolchain.
#
#   1. Release build of the whole workspace.
#   2. Full test suite (unit + doc + the cross-crate integration tests
#      in tests/: paper_claims, full_system, exact_hardware,
#      failure_injection, determinism, invariants).
#   3. Warnings are errors in the stats and sim crates (the layers the
#      trial scheduler and sweep API live in).
#   4. Smoke-run of the throughput harness: results/BENCH.json must
#      exist and carry the keys downstream tooling reads.
set -euo pipefail
cd "$(dirname "$0")"

echo "=== tier 1: release build ==="
cargo build --release --workspace

echo "=== tier 1: test suite (offline) ==="
cargo test -q --workspace

echo "=== tier 2: warnings-as-errors (stats, sim) ==="
RUSTFLAGS="-D warnings" cargo check -q -p tapeworm-stats -p tapeworm-sim --all-targets

echo "=== tier 2: perf_throughput smoke ==="
cargo build --release -p tapeworm-bench
rm -f results/BENCH.json
./target/release/perf_throughput --smoke
test -s results/BENCH.json || { echo "ci.sh: results/BENCH.json missing or empty" >&2; exit 1; }
for key in schema per_config runs single_thread_refs_per_sec speedup_vs_baseline; do
  grep -q "\"$key\"" results/BENCH.json || {
    echo "ci.sh: results/BENCH.json lacks \"$key\"" >&2; exit 1;
  }
done

echo "ci.sh: all gates passed"
