//! Set sampling: trading measurement variance for speed (§3.2,
//! Figure 3, Table 8).
//!
//! Runs mpeg_play at sampling fractions 1/1 … 1/16 and reports the
//! slowdown (drops proportionally) and the spread of the expanded miss
//! estimate over multiple trials (grows).
//!
//! Run with: `cargo run --release --example set_sampling`

use tapeworm::core::CacheConfig;
use tapeworm::sim::{run_trial, ComponentSet, SystemConfig};
use tapeworm::stats::trials::run_trials;
use tapeworm::stats::SeedSeq;
use tapeworm::workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = SeedSeq::new(1994);
    let cache = CacheConfig::new(2 * 1024, 16, 1)?;

    println!("mpeg_play user task, 2K direct-mapped cache, 8 trials per point\n");
    println!(
        "{:>8}  {:>9}  {:>14}  {:>8}",
        "sample", "slowdown", "misses (est.)", "spread s%"
    );
    for den in [1u64, 2, 4, 8, 16] {
        let cfg = SystemConfig::cache(Workload::MpegPlay, cache)
            .with_components(ComponentSet::user_only())
            .with_scale(500)
            .with_sampling(den);
        let mut slowdown = 0.0;
        let trials = run_trials(base.derive("sampling-demo", den), 8, |trial| {
            let r = run_trial(&cfg, base, trial);
            slowdown = r.slowdown();
            r.total_misses()
        })?;
        let s = trials.summary();
        println!(
            "{:>7}  {:>9.2}  {:>14.0}  {:>8.1}%",
            format!("1/{den}"),
            slowdown,
            s.mean(),
            s.stddev_pct_of_mean()
        );
    }
    println!(
        "\nSlowdown falls in direct proportion to the fraction of sets sampled\n\
         (the hardware filters unsampled lines for free); the price is variance\n\
         in the expanded estimate, so sampled experiments need more trials."
    );
    Ok(())
}
