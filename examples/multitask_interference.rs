//! Multi-task and OS completeness: the reason Tapeworm exists.
//!
//! Reproduces the Table 6 methodology on the `ousterhout` suite: run
//! each workload component in a dedicated simulated cache, then all
//! components in a shared cache, and observe that (a) the system
//! components dominate the misses, and (b) sharing adds interference
//! misses a user-level-only tool would never see.
//!
//! Run with: `cargo run --release --example multitask_interference`

use tapeworm::core::CacheConfig;
use tapeworm::machine::Component;
use tapeworm::sim::{run_trial, ComponentSet, SystemConfig};
use tapeworm::stats::SeedSeq;
use tapeworm::trace::Pixie;
use tapeworm::workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = CacheConfig::new(4 * 1024, 16, 1)?;
    let base = SeedSeq::new(1994);
    let trial = SeedSeq::new(3);
    let workload = Workload::Ousterhout;

    let run = |set: ComponentSet| {
        let cfg = SystemConfig::cache(workload, cache)
            .with_components(set)
            .with_scale(500);
        run_trial(&cfg, base, trial)
    };

    println!("ousterhout (15 user tasks), 4K direct-mapped I-cache\n");
    let user = run(ComponentSet::user_only());
    let servers = run(ComponentSet::servers_only());
    let kernel = run(ComponentSet::kernel_only());
    let all = run(ComponentSet::all());

    println!("dedicated caches:");
    println!("  user tasks : {:>9.0} misses", user.total_misses());
    println!("  servers    : {:>9.0} misses", servers.total_misses());
    println!("  kernel     : {:>9.0} misses", kernel.total_misses());
    let parts = user.total_misses() + servers.total_misses() + kernel.total_misses();
    println!("shared cache:");
    println!("  all activity: {:>8.0} misses", all.total_misses());
    println!("  interference: {:>8.0} misses", all.total_misses() - parts);

    let user_share = user.total_misses() / all.total_misses();
    println!(
        "\nA user-level-only tool sees {:.0}% of this workload's misses.",
        user_share * 100.0
    );
    println!(
        "Kernel+servers contribute {:.0}%, interference {:.0}%.",
        (servers.total_misses() + kernel.total_misses()) / all.total_misses() * 100.0,
        (all.total_misses() - parts) / all.total_misses() * 100.0
    );

    // And indeed, the era's standard tool cannot even trace this
    // workload:
    match Pixie::annotate(workload, 1000, base) {
        Err(e) => println!("\nPixie says: {e}"),
        Ok(_) => unreachable!("ousterhout is multi-task"),
    }

    // Per-component attribution inside the shared-cache run:
    println!("\nshared-cache misses by component:");
    for c in Component::ALL {
        println!("  {:<12} {:>9.0}", c.to_string(), all.misses(c));
    }
    Ok(())
}
