//! Continuous monitoring — §5's closing vision, runnable.
//!
//! "Simulations can be driven by the memory references generated
//! during an actual user's session, because Tapeworm slowdowns can be
//! made imperceptible to the user. This makes it possible to watch for
//! interesting cases that cannot be identified by traditional batch
//! simulations."
//!
//! We run sdet (a bursty, 281-task software-development workload) with
//! per-window miss sampling, render the miss-ratio timeline, and flag
//! the windows a batch mean would have hidden.
//!
//! Run with: `cargo run --release --example continuous_monitoring`

use tapeworm::core::CacheConfig;
use tapeworm::sim::{run_trial_windowed, SystemConfig};
use tapeworm::stats::SeedSeq;
use tapeworm::workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = CacheConfig::new(4 * 1024, 16, 1)?;
    let cfg = SystemConfig::cache(Workload::Sdet, cache).with_scale(200);
    const WINDOW: u64 = 100_000;

    let (result, windows) = run_trial_windowed(&cfg, SeedSeq::new(1994), SeedSeq::new(6), WINDOW);
    let ratios: Vec<f64> = windows.iter().map(|w| w.miss_ratio(WINDOW)).collect();
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);

    println!(
        "sdet, 4K DM cache: {} windows of {}k instructions (batch mean ratio {:.4})\n",
        ratios.len(),
        WINDOW / 1000,
        mean
    );
    for (i, (w, r)) in windows.iter().zip(&ratios).enumerate() {
        let bar = "#".repeat((r / max * 50.0).round() as usize);
        let flag = if *r > 1.03 * mean {
            "  <-- above-mean burst"
        } else if *r < 0.97 * mean {
            "  <-- quiet phase"
        } else {
            ""
        };
        println!(
            "w{:02} @{:>8} instr  {:.4}  {bar}{flag}",
            i, w.end_instructions, r
        );
    }

    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "\nWindow ratios span {:.4}..{:.4} ({:.1}% swing) around the batch mean\n\
         {:.4} — task-churn texture a single whole-run number (total ratio\n\
         {:.4}, slowdown {:.2}x) cannot show, and exactly what the paper's\n\
         continuous-monitoring mode is for.",
        min,
        max,
        100.0 * (max - min) / mean,
        mean,
        result.total_miss_ratio(),
        result.slowdown()
    );
    Ok(())
}
