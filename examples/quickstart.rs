//! Quickstart: the trap-driven simulation idea in one file.
//!
//! Part 1 drives the Tapeworm primitives by hand, exactly as the
//! paper's Figure 1 shows the miss handler working. Part 2 runs a
//! complete system trial through the experiment engine.
//!
//! Run with: `cargo run --release --example quickstart`

use tapeworm::core::{CacheConfig, Tapeworm};
use tapeworm::machine::Component;
use tapeworm::mem::{Pfn, PhysAddr, TrapMap, VirtAddr};
use tapeworm::os::Tid;
use tapeworm::sim::{run_trial, SystemConfig};
use tapeworm::stats::SeedSeq;
use tapeworm::workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Part 1: the mechanism, by hand.
    // ------------------------------------------------------------------
    // A 1K direct-mapped simulated cache with 4-word (16-byte) lines,
    // over a machine with 1 MiB of trap-capable memory.
    let cache = CacheConfig::new(1024, 16, 1)?;
    let mut tapeworm = Tapeworm::new(cache, 4096, SeedSeq::new(1));
    let mut traps = TrapMap::new(1 << 20, 16);
    let tid = Tid::new(1);

    // The VM system registers a freshly mapped page: every line of the
    // page is trapped, meaning "not in the simulated cache".
    tapeworm.tw_register_page(&mut traps, tid, Pfn::new(0), 0);
    println!("after register: {} lines trapped", traps.count());

    // The task now "executes". Hits run at memory speed (no trap);
    // misses vector to the handler which clears the trap, inserts the
    // line and re-traps the displaced victim.
    let mut handler_cycles = 0;
    for step in 0..20_000u64 {
        // A loop over 2 KiB of code: twice the simulated cache.
        let va = VirtAddr::new((step * 4) % 2048);
        let pa = PhysAddr::new(va.raw()); // identity-mapped for the demo
        if traps.is_trapped(pa) {
            handler_cycles += tapeworm.handle_miss(&mut traps, Component::User, tid, va, pa);
        }
    }
    println!(
        "misses: {} (cold {} lines + steady-state conflicts), handler overhead {} cycles",
        tapeworm.stats().raw_total(),
        2048 / 16,
        handler_cycles
    );

    // ------------------------------------------------------------------
    // Part 2: the same idea at system scale.
    // ------------------------------------------------------------------
    // Boot the machine + microkernel, run the espresso workload with
    // kernel, servers and user task all registered, and report what the
    // paper reports: misses per component, and Slowdown.
    let cache = CacheConfig::new(4 * 1024, 16, 1)?;
    let cfg = SystemConfig::cache(Workload::Espresso, cache).with_scale(500);
    let result = run_trial(&cfg, SeedSeq::new(1994), SeedSeq::new(7));

    println!("\nespresso, 4K direct-mapped I-cache, all activity:");
    for component in Component::ALL {
        println!(
            "  {:<12} {:>9.0} misses (ratio {:.4})",
            component.to_string(),
            result.misses(component),
            result.miss_ratio(component),
        );
    }
    println!(
        "  total ratio {:.4}, slowdown {:.2}x, {} clock interrupts, {} page faults",
        result.total_miss_ratio(),
        result.slowdown(),
        result.clock_interrupts,
        result.page_faults,
    );
    Ok(())
}
