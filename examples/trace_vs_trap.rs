//! Head-to-head: trap-driven versus trace-driven simulation of the
//! same workload (the Figure 2 comparison, on espresso).
//!
//! Both simulators consume the *same* deterministic reference stream,
//! so with matching replacement policies their user-task miss counts
//! agree exactly — the paper's validation methodology — while their
//! costs diverge: Tapeworm pays per miss, Pixie + Cache2000 pays per
//! reference.
//!
//! Run with: `cargo run --release --example trace_vs_trap`

use tapeworm::core::{CacheConfig, Indexing};
use tapeworm::machine::Component;
use tapeworm::sim::compare::run_trace_driven;
use tapeworm::sim::{run_trial, ComponentSet, SystemConfig};
use tapeworm::stats::SeedSeq;
use tapeworm::trace::TracePolicy;
use tapeworm::workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = SeedSeq::new(1994);
    println!("espresso, direct-mapped 4-word-line caches\n");
    println!(
        "{:>6}  {:>14} {:>14}  {:>10} {:>10}  {:>6}",
        "cache", "trap misses", "trace misses", "trap slow", "trace slow", "agree"
    );
    for kb in [1u64, 2, 4, 8, 16, 32] {
        // Virtual indexing on the trap side: a trace built from virtual
        // addresses can only be compared against a virtually-indexed
        // simulation once the cache exceeds the page size.
        let cache = CacheConfig::new(kb * 1024, 16, 1)?.with_indexing(Indexing::Virtual);
        let cfg = SystemConfig::cache(Workload::Espresso, cache)
            .with_components(ComponentSet::user_only())
            .with_scale(500);
        let trap = run_trial(&cfg, base, SeedSeq::new(8));
        // FIFO on the trace side to match the trap-driven replacement
        // exactly (LRU is impossible trap-driven: hits are invisible).
        let trace = run_trace_driven(&cfg, cache, TracePolicy::Fifo, base)?;
        let trap_misses = trap.misses(Component::User);
        println!(
            "{:>5}K  {:>14.0} {:>14}  {:>9.2}x {:>9.2}x  {:>6}",
            kb,
            trap_misses,
            trace.misses,
            trap.slowdown(),
            trace.slowdown,
            trap_misses as u64 == trace.misses
        );
    }
    println!(
        "\nIdentical miss counts, wildly different costs: the trace pipeline's\n\
         slowdown is flat (every reference pays), while Tapeworm's tracks the\n\
         miss ratio toward zero. Break-even sits near 4 hits per miss (§4.1)."
    );
    Ok(())
}
