//! Memory fragmentation in a long-running system (§4.2).
//!
//! "We have observed gradual (but substantial) increases in TLB misses
//! due to kernel and server memory fragmentation in a long-running
//! system." The mechanism: allocator churn leaves holes, so the same
//! amount of live data ends up spread over more, emptier pages — and a
//! fixed-size TLB covers an ever-smaller fraction of the working set.
//!
//! We model a server heap of small objects, initially densely packed
//! (8 per page). Every epoch a third of the objects die and are
//! reallocated into fresh pages that the aging allocator never packs
//! tightly again. Live data never grows; the page count does; TLB
//! misses climb.
//!
//! Run with: `cargo run --release --example long_running_fragmentation`

use std::collections::HashMap;

use tapeworm::core::{TlbSim, TlbSimConfig};
use tapeworm::machine::Component;
use tapeworm::mem::{PageSize, SequentialAllocator, VirtAddr};
use tapeworm::os::{Tid, Translation, Vm};
use tapeworm::stats::SeedSeq;

const OBJECTS: usize = 400;
const OBJECTS_PER_FRESH_PAGE: usize = 8;
const EPOCHS: usize = 10;
const REFS_PER_EPOCH: usize = 60_000;

struct Heap {
    /// Object index -> virtual page number.
    home: Vec<u64>,
    /// Page -> live object count.
    occupancy: HashMap<u64, usize>,
    next_vpn: u64,
}

fn main() {
    let mut vm = Vm::new(PageSize::DEFAULT, Box::new(SequentialAllocator::new(8192)));
    let mut tlb = TlbSim::new(TlbSimConfig::r3000(), PageSize::DEFAULT, SeedSeq::new(1));
    let tid = Tid::new(1);
    let mut rng = SeedSeq::new(7).rng();

    // Fresh boot: objects packed densely.
    let mut heap = Heap {
        home: Vec::new(),
        occupancy: HashMap::new(),
        next_vpn: 0,
    };
    for i in 0..OBJECTS {
        let vpn = (i / OBJECTS_PER_FRESH_PAGE) as u64;
        heap.home.push(vpn);
        *heap.occupancy.entry(vpn).or_insert(0) += 1;
    }
    heap.next_vpn = heap.occupancy.len() as u64;
    for &vpn in heap.occupancy.keys() {
        let (_, ev) = vm.map_new(tid, vpn).expect("frames available");
        tlb.on_vm_event(&mut vm, ev);
    }

    println!("server heap: {OBJECTS} objects, 64-entry TLB, {REFS_PER_EPOCH} refs/epoch\n");
    println!(
        "{:>6}  {:>11}  {:>12}  {:>14}",
        "epoch", "live pages", "TLB misses", "misses/1k refs"
    );
    let mut prev_misses = 0u64;
    for epoch in 0..EPOCHS {
        for _ in 0..REFS_PER_EPOCH {
            let obj = rng.gen_range(0..OBJECTS);
            let vpn = heap.home[obj];
            let va = VirtAddr::new(vpn * 4096 + rng.gen_range(0..1024u64) * 4);
            loop {
                match vm.translate(tid, va) {
                    Translation::Mapped(_) => break,
                    Translation::TapewormPageTrap(_) => {
                        tlb.handle_page_trap(&mut vm, Component::BsdServer, tid, vpn);
                    }
                    Translation::NotMapped => unreachable!("live pages stay mapped"),
                }
            }
        }
        let misses = tlb.stats().raw_total() - prev_misses;
        prev_misses = tlb.stats().raw_total();
        println!(
            "{epoch:>6}  {:>11}  {misses:>12}  {:>14.2}",
            heap.occupancy.len(),
            1000.0 * misses as f64 / REFS_PER_EPOCH as f64
        );

        // Aging: a third of the objects are freed and reallocated. The
        // fragmented allocator packs fresh pages ever more loosely.
        let per_page = (OBJECTS_PER_FRESH_PAGE >> (epoch / 2).min(3)).max(1);
        for _ in 0..OBJECTS / 3 {
            let obj = rng.gen_range(0..OBJECTS);
            let old = heap.home[obj];
            let occ = heap
                .occupancy
                .get_mut(&old)
                .expect("object lives somewhere");
            *occ -= 1;
            if *occ == 0 {
                heap.occupancy.remove(&old);
                let ev = vm.unmap(tid, old);
                tlb.on_vm_event(&mut vm, ev);
            }
            // Reallocate: find (or open) a fresh page with room.
            let fresh = heap
                .occupancy
                .iter()
                .find(|&(&vpn, &n)| vpn >= heap.next_vpn - 16 && n < per_page)
                .map(|(&vpn, _)| vpn)
                .unwrap_or_else(|| {
                    let vpn = heap.next_vpn;
                    heap.next_vpn += 1;
                    let (_, ev) = vm.map_new(tid, vpn).expect("frames available");
                    tlb.on_vm_event(&mut vm, ev);
                    heap.occupancy.insert(vpn, 0);
                    vpn
                });
            *heap.occupancy.get_mut(&fresh).expect("fresh page exists") += 1;
            heap.home[obj] = fresh;
        }
    }
    println!(
        "\nLive data never changed; the layout aged. As occupancy decays, the\n\
         same objects need more pages than the TLB covers and the miss rate\n\
         climbs — the paper's long-running-system drift, cheap to watch\n\
         continuously precisely because hits cost nothing under Tapeworm."
    );
}
