//! TLB simulation with page-valid-bit traps — the first-generation
//! Tapeworm capability carried into Tapeworm II.
//!
//! Sweeps simulated TLB sizes for an OS-intensive workload and then
//! shows variable page sizes (superpages) cutting the miss count, the
//! direction explored by the Talluri & Hill paper published alongside
//! Tapeworm at ASPLOS-VI.
//!
//! Run with: `cargo run --release --example tlb_simulation`

use tapeworm::core::TlbSimConfig;
use tapeworm::mem::PageSize;
use tapeworm::sim::{run_trial, SystemConfig};
use tapeworm::stats::SeedSeq;
use tapeworm::workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = SeedSeq::new(1994);
    let trial = SeedSeq::new(5);

    println!("ousterhout TLB simulation (fully associative, 4K pages)\n");
    println!(
        "{:>8}  {:>12}  {:>10}",
        "entries", "TLB misses", "per 1K instr"
    );
    for entries in [16u32, 32, 64, 128, 256] {
        let tlb = TlbSimConfig {
            entries,
            associativity: entries,
            page_size: PageSize::DEFAULT,
            miss_cycles: 250,
            kernel_miss_cycles: 550,
        };
        let cfg = SystemConfig::tlb(Workload::Ousterhout, tlb).with_scale(500);
        let r = run_trial(&cfg, base, trial);
        println!(
            "{:>8}  {:>12.0}  {:>10.3}",
            entries,
            r.total_misses(),
            1000.0 * r.total_miss_ratio()
        );
    }

    println!("\n64-entry TLB with growing (super)page sizes:");
    println!(
        "{:>8}  {:>12}  {:>10}",
        "page", "TLB misses", "per 1K instr"
    );
    for page_kb in [4u64, 8, 16, 64] {
        let tlb = TlbSimConfig {
            entries: 64,
            associativity: 64,
            page_size: PageSize::new(page_kb * 1024)?,
            miss_cycles: 250,
            kernel_miss_cycles: 550,
        };
        let cfg = SystemConfig::tlb(Workload::Ousterhout, tlb).with_scale(500);
        let r = run_trial(&cfg, base, trial);
        println!(
            "{:>7}K  {:>12.0}  {:>10.3}",
            page_kb,
            r.total_misses(),
            1000.0 * r.total_miss_ratio()
        );
    }
    println!(
        "\nBigger TLBs and bigger pages both cut misses; the trap mechanism is\n\
         the page valid bit either way (paper §3.2, Table 2)."
    );
    Ok(())
}
