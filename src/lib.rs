//! # Tapeworm II — trap-driven cache and TLB simulation
//!
//! A full reproduction of *"Trap-driven Simulation with Tapeworm II"*
//! (Uhlig, Nagle, Mudge, Sechrest — ASPLOS 1994) as a Rust workspace.
//! This facade crate re-exports every layer so examples and downstream
//! users need a single dependency:
//!
//! * [`stats`] — trial statistics, seeds, Zipf sampling.
//! * [`mem`] — SECDED ECC memory, trap maps, frame allocators.
//! * [`machine`] — the simulated host: traps, TLB, clock, breakpoints,
//!   DMA, the Monster monitor.
//! * [`os`] — the microkernel: tasks with Tapeworm attributes, VM
//!   system, scheduler.
//! * [`workload`] — the eight ASPLOS'94 workload models.
//! * [`core`] — **the paper's contribution**: the trap-driven
//!   simulator, its Table 1 primitives, set sampling, cost models and
//!   TLB simulation.
//! * [`trace`] — the Pixie + Cache2000 trace-driven baseline.
//! * [`obs`] — the Monster II observability layer: counter registry,
//!   trap-event ring, phase cycle accounting, metrics export.
//! * [`sim`] — the full-system experiment engine.
//! * [`server`] — sweep-as-a-service: declarative specs, a persistent
//!   job queue, pluggable worker backends and the fingerprint cache.
//!
//! # Quickstart
//!
//! ```
//! use tapeworm::core::CacheConfig;
//! use tapeworm::sim::{run_trial, SystemConfig};
//! use tapeworm::stats::SeedSeq;
//! use tapeworm::workload::Workload;
//!
//! let cache = CacheConfig::new(4 * 1024, 16, 1)?;
//! let cfg = SystemConfig::cache(Workload::Espresso, cache).with_scale(2000);
//! let result = run_trial(&cfg, SeedSeq::new(1), SeedSeq::new(2));
//! assert!(result.total_misses() > 0.0);
//! println!("slowdown: {:.2}", result.slowdown());
//! # Ok::<(), tapeworm::core::CacheConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tapeworm_core as core;
pub use tapeworm_machine as machine;
pub use tapeworm_mem as mem;
pub use tapeworm_obs as obs;
pub use tapeworm_os as os;
pub use tapeworm_server as server;
pub use tapeworm_sim as sim;
pub use tapeworm_stats as stats;
pub use tapeworm_trace as trace;
pub use tapeworm_workload as workload;
