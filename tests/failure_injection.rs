//! Failure injection: genuine memory errors, DMA interference and the
//! no-allocate-on-write hazard — the measurement-bias and portability
//! pitfalls of paper §4.2–§4.4.

use tapeworm::core::{CacheConfig, Tapeworm};
use tapeworm::machine::{AccessKind, Component, DmaEngine, FetchOutcome, Machine, MachineConfig};
use tapeworm::mem::{EccMemory, MemoryEvent, Pfn, PhysAddr, TrapMap, VirtAddr, WritePolicy};
use tapeworm::os::Tid;
use tapeworm::stats::SeedSeq;

/// Paper footnote 1: with Tapeworm active, true errors are still
/// detected with high probability. Inject random single-bit errors
/// into a memory carrying traps and verify none is mistaken for a
/// Tapeworm trap.
#[test]
fn injected_errors_never_masquerade_as_traps() {
    let mut mem = EccMemory::new(64 * 1024);
    // Trap every other line, like a half-full simulated cache.
    for line in 0..(64 * 1024 / 16) {
        if line % 2 == 0 {
            mem.set_trap(PhysAddr::new(line * 16), 16).unwrap();
        }
    }
    let mut rng = SeedSeq::new(42).rng();
    let mut detected = 0;
    for _ in 0..2_000 {
        let word = rng.gen_range(0..64u64 * 1024 / 4) * 4;
        let pa = PhysAddr::new(word);
        let bit = rng.gen_range(0..32u8);
        let mut faulty = mem.clone();
        faulty.inject_data_error(pa, bit).unwrap();
        match faulty.read_word(pa).unwrap() {
            MemoryEvent::CorrectedTrueError(_) | MemoryEvent::Uncorrectable => detected += 1,
            MemoryEvent::TapewormTrap(_) => {
                panic!("true error at {pa} bit {bit} misread as a Tapeworm trap")
            }
            MemoryEvent::Clean(_) => panic!("injected error at {pa} went unnoticed"),
        }
    }
    assert_eq!(detected, 2_000);
}

/// Check-bit errors on the *designated* trap bit are indistinguishable
/// from traps by construction — the one truly ambiguous case, which
/// the paper's probability argument accepts (1 position in 39).
#[test]
fn only_the_designated_check_bit_is_ambiguous() {
    let mut mem = EccMemory::new(4096);
    let pa = PhysAddr::new(0x40);
    // Injecting an error on check bit 0 (the trap bit) looks like a trap:
    mem.inject_check_error(pa, 0).unwrap();
    assert!(mem.read_word(pa).unwrap().is_tapeworm_trap());
    // Every other check bit reads as a true error.
    for bit in 1..7u8 {
        let mut m = EccMemory::new(4096);
        m.inject_check_error(pa, bit).unwrap();
        assert!(m.read_word(pa).unwrap().is_true_error(), "check bit {bit}");
    }
}

/// DMA writes regenerate ECC behind the CPU's back, silently clearing
/// traps: the simulated cache diverges until the OS re-registers the
/// buffer (the 5000/240 port hazard, §4.3).
#[test]
fn dma_transfer_breaks_and_reregistration_restores_the_invariant() {
    let cfg = CacheConfig::new(1024, 16, 1).unwrap();
    let mut tw = Tapeworm::new(cfg, 4096, SeedSeq::new(1));
    let mut traps = TrapMap::new(1 << 20, 16);
    let tid = Tid::new(1);
    tw.tw_register_page(&mut traps, tid, Pfn::new(0), 0);
    tw.validate_invariant(&traps).unwrap();

    let mut dma = DmaEngine::new();
    let destroyed = dma.transfer(&mut traps, PhysAddr::new(0), 1024);
    assert!(destroyed > 0);
    // The invariant is now broken: lines that should trap do not.
    assert!(tw.validate_invariant(&traps).is_err());

    // OS-level fix: after I/O completion, remove and re-register the
    // page so its trap state is rebuilt.
    tw.tw_remove_page(&mut traps, tid, Pfn::new(0), 0);
    tw.tw_register_page(&mut traps, tid, Pfn::new(0), 0);
    tw.validate_invariant(&traps).unwrap();
}

/// The §4.3 recovery discipline under stress: random DMA storms over a
/// multi-page working set, each followed by the OS re-arming the pages
/// the transfer touched, must restore the trap map to *exactly* its
/// pre-DMA state — not just re-satisfy the invariant. (Re-registration
/// derives trap state purely from simulated-cache residency, which DMA
/// never changes, so the restored set must be bit-identical.)
#[test]
fn randomized_dma_storms_re_arm_to_the_exact_trap_set() {
    const PAGE: u64 = 4096;
    const PAGES: u64 = 8;
    let cfg = CacheConfig::new(1024, 16, 1).unwrap();
    let mut tw = Tapeworm::new(cfg, PAGE, SeedSeq::new(9));
    let mut traps = TrapMap::new(1 << 20, 16);
    let tid = Tid::new(1);
    for p in 0..PAGES {
        tw.tw_register_page(&mut traps, tid, Pfn::new(p), p);
    }
    tw.validate_invariant(&traps).unwrap();
    let snapshot = traps.clone();
    assert!(snapshot.count() > 0, "working set must arm traps");

    let mut dma = DmaEngine::new();
    let mut rng = SeedSeq::new(2024).rng();
    let mut destroyed_total = 0;
    for round in 0..50u32 {
        let start = rng.gen_range(0..PAGES * PAGE);
        let size = (1 + rng.gen_range(0..2 * PAGE)).min(PAGES * PAGE - start);
        destroyed_total += dma.transfer(&mut traps, PhysAddr::new(start), size);
        // After I/O completion the OS re-arms every page the window
        // touched.
        for p in (start / PAGE)..=((start + size - 1) / PAGE) {
            tw.tw_remove_page(&mut traps, tid, Pfn::new(p), p);
            tw.tw_register_page(&mut traps, tid, Pfn::new(p), p);
        }
        assert_eq!(
            traps, snapshot,
            "round {round}: re-arm must restore the exact trap set"
        );
        tw.validate_invariant(&traps).unwrap();
    }
    assert!(destroyed_total > 0, "the storm must actually destroy traps");
    assert_eq!(dma.traps_destroyed(), destroyed_total);
}

/// Stores under no-allocate-on-write destroy traps without invoking
/// the handler — why data-cache simulation failed on the 5000/200 —
/// while allocate-on-write machines trap on stores too (§4.4).
#[test]
fn write_policy_gates_data_cache_simulability() {
    for (policy, expect_trap) in [
        (WritePolicy::NoAllocateOnWrite, false),
        (WritePolicy::AllocateOnWrite, true),
    ] {
        let mut machine = Machine::new(MachineConfig {
            mem_bytes: 1 << 16,
            trap_granule: 16,
            clock_period: 1000,
            breakpoint_registers: 0,
            write_policy: policy,
            sparse_mem: true,
        });
        machine.traps_mut().set_range(PhysAddr::new(0x100), 16);
        let out = machine.access(
            AccessKind::Store,
            VirtAddr::new(0x100),
            PhysAddr::new(0x100),
        );
        assert_eq!(out.traps(), expect_trap, "{policy:?}");
        if !expect_trap {
            assert_eq!(machine.write_traps_destroyed(), 1);
            // The miss was silently lost.
            assert!(!machine.traps().is_trapped(PhysAddr::new(0x100)));
        }
    }
}

/// Masked-interrupt sections lose ECC traps but the loss is counted,
/// so the bias can be bounded (§4.2).
#[test]
fn masked_sections_lose_but_count_misses() {
    let cfg = CacheConfig::new(1024, 16, 1).unwrap();
    let mut tw = Tapeworm::new(cfg, 4096, SeedSeq::new(1));
    let mut machine = Machine::new(MachineConfig::default());
    let tid = Tid::new(1);
    tw.tw_register_page(&mut traps_of(&mut machine), tid, Pfn::new(0), 0);

    machine.set_interrupts_enabled(false);
    let mut lost = 0;
    for line in 0..8u64 {
        let pa = PhysAddr::new(line * 16);
        match machine.access(AccessKind::IFetch, VirtAddr::new(pa.raw()), pa) {
            FetchOutcome::MaskedEccSkipped => {
                tw.note_masked_miss();
                lost += 1;
            }
            other => panic!("expected masked skip, got {other:?}"),
        }
    }
    assert_eq!(lost, 8);
    assert_eq!(tw.stats().masked(), 8);
    assert_eq!(tw.stats().raw_total(), 0);
    assert_eq!(machine.masked_ecc_skips(), 8);

    // Unmasked, the same references trap normally.
    machine.set_interrupts_enabled(true);
    let pa = PhysAddr::new(0);
    assert_eq!(
        machine.access(AccessKind::IFetch, VirtAddr::new(0), pa),
        FetchOutcome::EccTrap
    );
    let _ = Component::ALL;
}

fn traps_of(machine: &mut Machine) -> &mut TrapMap {
    machine.traps_mut()
}

/// An undersized physical memory is a configuration error, not a
/// crash: `try_run_trial` surfaces it as a typed
/// [`tapeworm::sim::TrialError::OutOfFrames`] whose message names the
/// knob to raise (`SystemConfig::frames`), and `Error::source` carries
/// the VM-level out-of-memory error.
#[test]
fn out_of_frames_is_a_typed_trial_error() {
    use std::error::Error as _;
    use tapeworm::sim::{try_run_trial, SystemConfig, TrialError};
    use tapeworm::workload::Workload;

    let mut cfg = SystemConfig::cache(
        Workload::MpegPlay,
        CacheConfig::new(4 * 1024, 16, 1).expect("valid geometry"),
    )
    .with_scale(20_000);
    // mpeg_play's text + data footprint needs far more than 8 pages.
    cfg.frames = 8;

    let base = SeedSeq::new(1994);
    let err = try_run_trial(&cfg, base, base.derive("trial", 0))
        .expect_err("8 frames cannot hold the workload");
    let TrialError::OutOfFrames { frames, .. } = err;
    assert_eq!(frames, 8);
    assert!(err.source().is_some(), "source must carry the VM error");
    let msg = err.to_string();
    assert!(
        msg.contains("SystemConfig::frames") && msg.contains("8 frames"),
        "message must name the knob: {msg}"
    );
}
