//! Differential suite for the resident-run fast path.
//!
//! The engine's hot loop may retire whole trap-free instruction runs in
//! one batch instead of stepping chunk by chunk. That optimisation is
//! only legal because it is *bit-identical* to stepwise execution —
//! same `TrialResult`, same interrupt delivery positions, same
//! observability counters (minus the fast-path tallies themselves).
//! This suite pins that equivalence for every simulator mode and for
//! both serial and parallel sweeps, and exercises the two kill
//! switches: `SystemConfig::with_fast_path(false)` and the `TW_FAST=0`
//! environment knob.

use std::sync::Mutex;

use tapeworm::core::{CacheConfig, TlbSimConfig};
use tapeworm::obs::CounterId;
use tapeworm::sim::{
    run_sweep, run_trial_observed, ComponentSet, ObsConfig, SystemConfig, TrialResult,
};
use tapeworm::stats::SeedSeq;
use tapeworm::workload::Workload;

const SCALE: u64 = 20_000;

/// Serializes the tests that read or write `TW_FAST`: the env var is
/// process-global, and the engagement assertions below would misfire if
/// another test flipped it mid-run. (The *results* are env-independent
/// by construction — that is the point of this file — so the
/// equivalence tests need no lock.)
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn dm(kb: u64) -> CacheConfig {
    CacheConfig::new(kb * 1024, 16, 1).expect("valid geometry")
}

/// One configuration per simulator mode, same shapes as the golden
/// determinism matrix.
fn modes() -> Vec<(&'static str, SystemConfig)> {
    vec![
        (
            "cache",
            SystemConfig::cache(Workload::Espresso, dm(4)).with_scale(SCALE),
        ),
        (
            "cache-sampled",
            SystemConfig::cache(Workload::Espresso, dm(4))
                .with_components(ComponentSet::user_only())
                .with_sampling(8)
                .with_scale(SCALE),
        ),
        (
            "split",
            SystemConfig::split(Workload::JpegPlay, dm(4), dm(4)).with_scale(SCALE),
        ),
        (
            "two-level",
            SystemConfig::two_level(Workload::Espresso, dm(1), dm(8)).with_scale(SCALE),
        ),
        (
            "tlb",
            SystemConfig::tlb(Workload::MpegPlay, TlbSimConfig::r3000()).with_scale(SCALE),
        ),
        (
            "buffer",
            SystemConfig::kernel_trace_buffer(Workload::MpegPlay, dm(4)).with_scale(SCALE),
        ),
    ]
}

fn flatten(cells: &[tapeworm::sim::TrialSummary]) -> Vec<&TrialResult> {
    cells.iter().flat_map(|c| c.results()).collect()
}

/// The acceptance bar: for every simulator mode, a sweep with the fast
/// path enabled commits `TrialResult`s bit-identical to the forced slow
/// path, at 1 and 4 worker threads. (Metrics are compared modulo the
/// fast-path tallies, which legitimately differ.)
#[test]
fn fast_path_is_bit_identical_to_slow_path() {
    for (label, cfg) in modes() {
        let slow_cfgs = vec![cfg.clone().with_fast_path(false)];
        let fast_cfgs = vec![cfg];
        let slow = run_sweep(&slow_cfgs, 4, SeedSeq::new(1994), 1);
        for threads in [1usize, 4] {
            let fast = run_sweep(&fast_cfgs, 4, SeedSeq::new(1994), threads);
            assert_eq!(
                flatten(&slow),
                flatten(&fast),
                "{label}: fast path diverged from slow path at threads={threads}"
            );
            // Everything the simulation itself counts must match too;
            // only the fast-path bookkeeping may differ.
            let (sm, fm) = (&slow[0].metrics(), &fast[0].metrics());
            for (id, sv) in sm.counters.iter() {
                // The miss-burst flush tally rides the fast path
                // (bursts only form where the batched clean-run scan
                // runs), so it differs with the fast path off too —
                // as do the miss-schedule tallies and the victim memo,
                // which the schedule path replaces wholesale.
                if matches!(
                    id,
                    CounterId::FastRuns
                        | CounterId::FastWords
                        | CounterId::MissBatchFlushes
                        | CounterId::VictimMemoHits
                        | CounterId::SchedReplays
                        | CounterId::SchedRecords
                        | CounterId::SchedSigMisses
                ) {
                    continue;
                }
                assert_eq!(
                    sv,
                    fm.counters.get(id),
                    "{label}: counter {id} diverged at threads={threads}"
                );
            }
            assert_eq!(sm.phases, fm.phases, "{label}: phase cycles diverged");
        }
    }
}

/// The fast path actually engages where it is supposed to — cache-style
/// configs retire most instructions through it — and never engages on
/// the excluded modes or when disabled.
#[test]
fn fast_path_engages_exactly_where_expected() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    std::env::remove_var("TW_FAST");
    let base = SeedSeq::new(1994);
    let trial = base.derive("fast", 0).derive("trial", 0);

    for (label, cfg) in modes() {
        let (r, m) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
        let runs = m.counters.get(CounterId::FastRuns);
        let words = m.counters.get(CounterId::FastWords);
        match label {
            // TLB mode has no per-chunk access dispatch and the kernel
            // trace buffer pays per reference; neither may batch.
            "tlb" | "buffer" => {
                assert_eq!(runs, 0, "{label}: fast path must stay off");
                assert_eq!(words, 0, "{label}");
            }
            _ => {
                assert!(runs > 0, "{label}: fast path never engaged");
                assert!(words >= runs, "{label}: runs retire at least one word");
                assert!(
                    words * 2 > r.instructions,
                    "{label}: expected the majority of {} instructions on the \
                     fast path, got {words}",
                    r.instructions
                );
            }
        }
        // The config kill switch forces every word onto the slow path.
        let off = cfg.with_fast_path(false);
        let (_, m) = run_trial_observed(&off, base, trial, ObsConfig::default());
        assert_eq!(m.counters.get(CounterId::FastRuns), 0, "{label}: disabled");
        assert_eq!(m.counters.get(CounterId::FastWords), 0, "{label}: disabled");
    }
}

/// `TW_FAST=0` is the no-recompile kill switch: it forces the slow path
/// (observable in the counters) without perturbing any result.
#[test]
fn tw_fast_env_knob_forces_the_slow_path() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    let base = SeedSeq::new(1994);
    let trial = base.derive("fast", 0).derive("trial", 0);
    let cfg = SystemConfig::cache(Workload::Espresso, dm(4)).with_scale(SCALE);

    std::env::remove_var("TW_FAST");
    let (on_result, on_metrics) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
    assert!(on_metrics.counters.get(CounterId::FastRuns) > 0);

    std::env::set_var("TW_FAST", "0");
    let (off_result, off_metrics) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
    std::env::remove_var("TW_FAST");

    assert_eq!(off_metrics.counters.get(CounterId::FastRuns), 0);
    assert_eq!(off_metrics.counters.get(CounterId::FastWords), 0);
    assert_eq!(on_result, off_result, "TW_FAST=0 perturbed the result");
    // Any value other than "0" leaves the fast path on.
    std::env::set_var("TW_FAST", "1");
    let (_, again) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
    std::env::remove_var("TW_FAST");
    assert!(again.counters.get(CounterId::FastRuns) > 0);
}
