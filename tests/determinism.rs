//! Determinism regression suite.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Thread-count invariance** — `run_sweep` commits `(config, trial)`
//!    cells in index order, so its output is bit-identical for every
//!    worker count. If the committer or the seed discipline regresses,
//!    these tests catch it.
//! 2. **Seed-derivation stability** — every experiment in the repo is a
//!    pure function of `SeedSeq` derivation paths. The golden values
//!    below pin the exact derivation arithmetic (SplitMix64 chain); any
//!    change to it silently re-randomizes every table and figure, so it
//!    must be deliberate and visible in this file's diff.

use tapeworm::core::{CacheConfig, TlbSimConfig};
use tapeworm::obs::MetricsReport;
use tapeworm::sim::{
    run_sweep, run_sweep_resilient, run_trial, run_trial_observed, run_trial_windowed,
    CheckpointConfig, ComponentSet, FaultPlan, ObsConfig, SweepOptions, SystemConfig, TrialResult,
    TrialSummary, WindowSample,
};
use tapeworm::stats::trials::{run_trials_parallel, TrialScheduler};
use tapeworm::stats::SeedSeq;
use tapeworm::workload::Workload;

const SCALE: u64 = 20_000;

fn sweep_configs() -> Vec<SystemConfig> {
    [(Workload::Espresso, 1u64), (Workload::MpegPlay, 4)]
        .into_iter()
        .map(|(w, kb)| {
            let cache = CacheConfig::new(kb * 1024, 16, 1).expect("valid geometry");
            SystemConfig::cache(w, cache)
                .with_components(ComponentSet::user_only())
                .with_scale(SCALE)
                .with_sampling(8)
        })
        .collect()
}

fn flatten(cells: &[tapeworm::sim::TrialSummary]) -> Vec<&TrialResult> {
    cells.iter().flat_map(|c| c.results()).collect()
}

/// `run_sweep` with 1, 2 and 8 threads produces bit-identical
/// `TrialResult`s for the same seed.
#[test]
fn run_sweep_is_bit_identical_across_thread_counts() {
    let configs = sweep_configs();
    let reference = run_sweep(&configs, 4, SeedSeq::new(1994), 1);
    for threads in [2usize, 8] {
        let other = run_sweep(&configs, 4, SeedSeq::new(1994), threads);
        assert_eq!(
            flatten(&reference),
            flatten(&other),
            "sweep output diverged at threads={threads}"
        );
        // Summaries are derived from the same values in the same order,
        // so they must match exactly too (no float reassociation).
        for (a, b) in reference.iter().zip(&other) {
            assert_eq!(a.misses().mean(), b.misses().mean());
            assert_eq!(a.misses().stddev(), b.misses().stddev());
            assert_eq!(a.slowdowns().mean(), b.slowdowns().mean());
        }
    }
}

/// The lower-level trial runner obeys the same contract.
#[test]
fn run_trials_parallel_is_bit_identical_across_thread_counts() {
    let cfg = &sweep_configs()[0];
    let base = SeedSeq::new(7);
    let serial = run_trials_parallel(base, 6, 1, |trial| {
        run_trial(cfg, base, trial).total_misses()
    })
    .expect("six trials");
    for threads in [2usize, 8] {
        let par = run_trials_parallel(base, 6, threads, |trial| {
            run_trial(cfg, base, trial).total_misses()
        })
        .expect("six trials");
        assert_eq!(serial.values(), par.values(), "threads={threads}");
    }
}

/// The committer releases results strictly in index order even when
/// completion order is scrambled.
#[test]
fn scheduler_commit_order_is_index_order() {
    let mut order = Vec::new();
    TrialScheduler::new(8).run_committed(
        32,
        |i| {
            // Make late indices finish first.
            std::thread::sleep(std::time::Duration::from_micros(((32 - i) * 100) as u64));
            i
        },
        |i, v| {
            assert_eq!(i, v);
            order.push(i);
        },
    );
    assert_eq!(order, (0..32).collect::<Vec<_>>());
}

/// Golden values for the `SeedSeq` derivation chain. These pin the
/// SplitMix64 arithmetic: a change here re-randomizes every experiment.
#[test]
fn seed_derivation_paths_are_stable() {
    let base = SeedSeq::new(1994);
    assert_eq!(base.value(), 0x6301_AAEC_4DCA_6C71);
    assert_eq!(base.derive("trial", 3).value(), 0xBF2B_3925_9056_F4A3);
    assert_eq!(
        base.derive("sweep-config", 2).derive("trial", 7).value(),
        0x35A7_EC21_BEB8_1BDE
    );
    let mut rng = base.rng();
    assert_eq!(rng.next_u64(), 0x7C9A_83A0_1C1E_711F);
    assert_eq!(rng.next_u64(), 0x0D77_64A5_0B7E_941B);
}

/// Derivation is label- and index-sensitive and order-sensitive, so
/// sibling experiment streams can never collide.
#[test]
fn derivation_separates_streams() {
    let base = SeedSeq::new(1994);
    assert_ne!(base.derive("trial", 0), base.derive("trial", 1));
    assert_ne!(base.derive("trial", 0), base.derive("frame-alloc", 0));
    assert_ne!(
        base.derive("a", 0).derive("b", 0),
        base.derive("b", 0).derive("a", 0)
    );
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

fn digest(result: &TrialResult, windows: &[WindowSample]) -> u64 {
    fnv1a(format!("{result:?}|{windows:?}").as_bytes())
}

/// Golden equivalence matrix for the hot-path engine rewrite: every
/// simulator mode (physical-indexed cache, sampled cache, TLB
/// valid-bit, split I/D, two-level hierarchy, windowed monitoring) and
/// the task-exit/pageout paths produce `TrialResult`s bit-identical to
/// the pre-refactor nested-HashMap engine. The digests were generated
/// by `crates/bench/src/bin/golden_digest.rs` running against the
/// engine *before* the flat-page-table / translation-cache rewrite;
/// re-run that binary to regenerate after a deliberate
/// behaviour-changing commit.
#[test]
fn engine_matches_pre_refactor_golden_digests() {
    let dm = |kb: u64| CacheConfig::new(kb * 1024, 16, 1).expect("valid geometry");
    let base = SeedSeq::new(1994);
    let trial = |label: &str| base.derive(label, 0).derive("trial", 0);

    let cases: Vec<(&str, SystemConfig, u64)> = vec![
        (
            "cache",
            SystemConfig::cache(Workload::Espresso, dm(4)).with_scale(SCALE),
            0xfc75_7dd0_5926_cc83,
        ),
        (
            "cache-sampled",
            SystemConfig::cache(Workload::Espresso, dm(4))
                .with_components(ComponentSet::user_only())
                .with_sampling(8)
                .with_scale(SCALE),
            0xae44_79ab_ae9c_cdb4,
        ),
        (
            "tlb",
            SystemConfig::tlb(Workload::MpegPlay, TlbSimConfig::r3000()).with_scale(SCALE),
            0xcade_da6a_b685_b4bb,
        ),
        (
            "split",
            SystemConfig::split(Workload::JpegPlay, dm(4), dm(4)).with_scale(SCALE),
            0x98f2_97f4_2d6b_e0ee,
        ),
        (
            "two-level",
            SystemConfig::two_level(Workload::Espresso, dm(1), dm(8)).with_scale(SCALE),
            0x828b_5b7e_4a30_5527,
        ),
        (
            "exits",
            SystemConfig::cache(Workload::Ousterhout, dm(4)).with_scale(SCALE),
            0xe0b6_02ab_d63f_c8f8,
        ),
        (
            "split-exits",
            SystemConfig::split(Workload::Ousterhout, dm(4), dm(4)).with_scale(SCALE),
            0xca39_27e3_924c_8d50,
        ),
        (
            "tlb-exits",
            SystemConfig::tlb(Workload::Ousterhout, TlbSimConfig::r3000()).with_scale(SCALE),
            0x3fc3_0f9d_2956_02b9,
        ),
    ];
    for (label, cfg, expected) in &cases {
        let r = run_trial(cfg, base, trial(label));
        assert_eq!(
            digest(&r, &[]),
            *expected,
            "TrialResult for {label} diverged from the pre-refactor engine"
        );
    }

    let cfg = SystemConfig::cache(Workload::MpegPlay, dm(4)).with_scale(SCALE);
    let (r, w) = run_trial_windowed(&cfg, base, trial("windowed"), 10_000);
    assert_eq!(
        digest(&r, &w),
        0x2bc7_619a_1c24_e048,
        "windowed TrialResult diverged from the pre-refactor engine"
    );
}

/// Same seed, same sweep, run twice: bit-identical (no hidden global
/// state anywhere in the stack).
#[test]
fn repeated_sweeps_are_reproducible() {
    let configs = sweep_configs();
    let a = run_sweep(&configs, 2, SeedSeq::new(3), 2);
    let b = run_sweep(&configs, 2, SeedSeq::new(3), 2);
    assert_eq!(flatten(&a), flatten(&b));
}

/// Observability metrics ride the same deterministic committer as
/// `TrialResult`s: a sweep's per-config merged metrics (counters, phase
/// cycles, trap-event summary) are bit-identical at 1 and 8 worker
/// threads.
#[test]
fn sweep_metrics_are_bit_identical_across_thread_counts() {
    let configs = sweep_configs();
    let reference = run_sweep(&configs, 4, SeedSeq::new(1994), 1);
    for threads in [2usize, 8] {
        let other = run_sweep(&configs, 4, SeedSeq::new(1994), threads);
        for (a, b) in reference.iter().zip(&other) {
            assert_eq!(
                a.metrics(),
                b.metrics(),
                "sweep metrics diverged at threads={threads}"
            );
        }
    }
    // The counters actually observed something.
    assert!(reference[0].metrics().counters.total() > 0);
}

/// `run_trial_observed` returns the same `TrialResult` as `run_trial`
/// for every simulator mode — observation never perturbs the
/// simulation — and its metrics are reproducible run to run, with the
/// ring on or off.
#[test]
fn observed_trials_match_plain_trials_and_reproduce() {
    let dm = |kb: u64| CacheConfig::new(kb * 1024, 16, 1).expect("valid geometry");
    let base = SeedSeq::new(1994);
    let trial = base.derive("obs", 0).derive("trial", 0);
    let cases: Vec<(&str, SystemConfig)> = vec![
        (
            "cache",
            SystemConfig::cache(Workload::Espresso, dm(4)).with_scale(SCALE),
        ),
        (
            "tlb",
            SystemConfig::tlb(Workload::MpegPlay, TlbSimConfig::r3000()).with_scale(SCALE),
        ),
        (
            "split",
            SystemConfig::split(Workload::JpegPlay, dm(4), dm(4)).with_scale(SCALE),
        ),
        (
            "two-level",
            SystemConfig::two_level(Workload::Espresso, dm(1), dm(8)).with_scale(SCALE),
        ),
    ];
    for (label, cfg) in &cases {
        let plain = run_trial(cfg, base, trial);
        let (observed, m1) = run_trial_observed(cfg, base, trial, ObsConfig::default());
        let (ringed, m2) = run_trial_observed(cfg, base, trial, ObsConfig::with_ring(256));
        assert_eq!(plain, observed, "{label}: observation perturbed the trial");
        assert_eq!(plain, ringed, "{label}: the event ring perturbed the trial");
        // Counters and phases are identical whether or not events are
        // recorded; only the event payload differs.
        assert_eq!(m1.counters, m2.counters, "{label}");
        assert_eq!(m1.phases, m2.phases, "{label}");
        assert_eq!(m1.events_recorded, 0, "{label}: disabled ring recorded");
        // Metrics are reproducible run to run.
        let (_, m3) = run_trial_observed(cfg, base, trial, ObsConfig::with_ring(256));
        assert_eq!(m2, m3, "{label}: metrics not reproducible");
        // The phase account books exactly the trial's cycles.
        assert_eq!(m1.phases.workload(), plain.workload_cycles, "{label}");
        assert_eq!(m1.phases.overhead(), plain.overhead_cycles, "{label}");
    }
}

/// Renders a sweep's cells the way the experiment binaries export them,
/// so "bit-identical" below covers the METRICS.json bytes too.
fn metrics_json(cells: &[TrialSummary], trials: u64) -> String {
    let mut report = MetricsReport::new("determinism", "test");
    for (i, cell) in cells.iter().enumerate() {
        report.push(&format!("config-{i}"), trials, cell.metrics().clone());
    }
    report.to_json()
}

/// The ISSUE acceptance bar: a sweep with injected panics on 2 of its
/// trials (plus one simulated hang) completes with the retries
/// succeeding, and its merged results *and* exported metrics are
/// bit-identical to the fault-free run for `TW_THREADS` ∈ {1, 4, 8}.
#[test]
fn faulted_sweep_is_bit_identical_to_fault_free() {
    let configs = sweep_configs();
    let base = SeedSeq::new(1994);
    let clean = run_sweep_resilient(&configs, 4, base, &SweepOptions::default());
    assert!(clean.fault_stats().is_clean());
    let faults = FaultPlan::new()
        .with_panic(1, 0)
        .with_panic(6, 0)
        .with_budget_exhaustion(3, 0);
    for threads in [1usize, 4, 8] {
        let faulted = run_sweep_resilient(
            &configs,
            4,
            base,
            &SweepOptions::default()
                .with_threads(threads)
                .with_faults(faults.clone()),
        );
        assert!(
            faulted.failed().is_empty(),
            "threads={threads}: retries must succeed"
        );
        assert_eq!(faulted.fault_stats().panics, 2, "threads={threads}");
        assert_eq!(faulted.fault_stats().typed_failures, 1);
        assert_eq!(faulted.fault_stats().retries, 3);
        assert_eq!(faulted.fault_stats().workers_respawned, 2);
        assert_eq!(
            flatten(clean.cells()),
            flatten(faulted.cells()),
            "threads={threads}: results diverged under faults"
        );
        assert_eq!(
            metrics_json(clean.cells(), 4),
            metrics_json(faulted.cells(), 4),
            "threads={threads}: exported metrics diverged under faults"
        );
    }
}

/// A sweep "killed" mid-run (deterministically, via `stop_after`) and
/// restarted with resume replays the committed prefix and produces
/// results and metrics bit-identical to an uninterrupted run, for
/// `TW_THREADS` ∈ {1, 4, 8}.
#[test]
fn interrupted_sweep_resumes_bit_identically() {
    let configs = sweep_configs();
    let base = SeedSeq::new(1994);
    let clean = run_sweep_resilient(&configs, 4, base, &SweepOptions::default());
    for threads in [1usize, 4, 8] {
        let dir = std::env::temp_dir().join(format!("tapeworm-determinism-resume-{threads}"));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("CHECKPOINT.json");
        let first = run_sweep_resilient(
            &configs,
            4,
            base,
            &SweepOptions::default()
                .with_threads(threads)
                .with_checkpoint(
                    CheckpointConfig::new(&path)
                        .with_interval(2)
                        .with_stop_after(5),
                ),
        );
        assert_eq!(first.stopped_after(), Some(5), "threads={threads}");
        assert!(path.exists(), "threads={threads}: prefix persisted");
        let second = run_sweep_resilient(
            &configs,
            4,
            base,
            &SweepOptions::default()
                .with_threads(threads)
                .with_checkpoint(CheckpointConfig::new(&path).resuming()),
        );
        assert_eq!(second.resumed_trials(), 5, "threads={threads}");
        assert!(!second.checkpoint_mismatch());
        assert_eq!(
            flatten(clean.cells()),
            flatten(second.cells()),
            "threads={threads}: resumed results diverged"
        );
        assert_eq!(
            metrics_json(clean.cells(), 4),
            metrics_json(second.cells(), 4),
            "threads={threads}: resumed metrics diverged"
        );
        assert!(!path.exists(), "threads={threads}: checkpoint cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The chaos gate's golden digest. `chaos_sweep` computes the same
/// digest over the same fixed scenario (sweep_configs × 4 trials, seed
/// 1994) and `ci.sh` greps its output for this exact value, so the
/// fault-free baseline, the faulted run and the resumed run are all
/// pinned to one number. Regenerate by running
/// `cargo run --release --bin chaos_sweep` after a deliberate
/// behaviour-changing commit.
const CHAOS_GOLDEN_DIGEST: u64 = 0x76fe_e05a_c899_b1d3;

fn chaos_digest(cells: &[TrialSummary]) -> u64 {
    let results: Vec<&TrialResult> = cells.iter().flat_map(|c| c.results()).collect();
    let metrics: Vec<_> = cells.iter().map(|c| c.metrics()).collect();
    fnv1a(format!("{results:?}|{metrics:?}").as_bytes())
}

#[test]
fn chaos_scenario_digest_matches_golden() {
    let outcome = run_sweep_resilient(
        &sweep_configs(),
        4,
        SeedSeq::new(1994),
        &SweepOptions::default(),
    );
    assert_eq!(
        chaos_digest(outcome.cells()),
        CHAOS_GOLDEN_DIGEST,
        "chaos scenario digest moved; regenerate with chaos_sweep and update ci.sh"
    );
}
