//! Workspace-level service determinism: the sweep service must return
//! results bit-identical to the direct engine — across thread counts
//! and cached-vs-fresh serving — for the pinned CI smoke spec.
//!
//! The subprocess-worker variants of these assertions live in
//! `crates/server/tests/server_e2e.rs` (they need the worker binary);
//! this suite pins the in-process service path from the facade.

use std::fs;
use std::path::PathBuf;

use tapeworm::server::{
    digest_outcomes, InProcessBackend, ServiceOptions, SweepPlan, SweepService,
};
use tapeworm::sim::{run_sweep_resilient, run_sweep_resilient_observed, SweepOptions};

/// The pinned digest of `specs/ci_smoke.toml` — the same value pinned
/// in `crates/server/tests/server_e2e.rs` and gated in ci.sh.
const CI_SMOKE_GOLDEN_DIGEST: u64 = 0x2791_1846_7b9c_2732;

fn ci_smoke_spec() -> String {
    fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/specs/ci_smoke.toml"))
        .expect("specs/ci_smoke.toml")
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("tapeworm-root-e2e-{tag}"));
    let _ = fs::remove_dir_all(&root);
    root
}

/// Submit → poll to done through the service at TW_THREADS ∈ {1,4,8}:
/// every digest equals the direct-engine digest and the golden pin,
/// and the per-configuration cells equal `run_sweep_resilient`'s
/// bit for bit.
#[test]
fn service_results_are_bit_identical_to_the_direct_engine() {
    let spec = ci_smoke_spec();
    let plan = SweepPlan::resolve(&spec).unwrap();

    let mut outcomes = Vec::new();
    let direct = run_sweep_resilient_observed(
        plan.configs(),
        plan.trials(),
        plan.base(),
        &SweepOptions::default(),
        |_, o| outcomes.push(o.clone()),
    );
    assert_eq!(digest_outcomes(&outcomes), CI_SMOKE_GOLDEN_DIGEST);

    for threads in [1usize, 4, 8] {
        let svc = SweepService::open(
            temp_root(&format!("threads-{threads}")),
            ServiceOptions {
                threads,
                cache: false,
                ..ServiceOptions::default()
            },
        )
        .unwrap();
        svc.submit(&spec).unwrap();
        let report = svc.run_pending(&InProcessBackend).unwrap().pop().unwrap();
        assert_eq!(
            report.digest, CI_SMOKE_GOLDEN_DIGEST,
            "service digest drifted at {threads} threads"
        );
        assert_eq!(report.cells.len(), direct.cells().len());
        for (service_cell, engine_cell) in report.cells.iter().zip(direct.cells()) {
            assert_eq!(
                service_cell.results(),
                engine_cell.results(),
                "service cells must be bit-identical to the engine's"
            );
        }
        fs::remove_dir_all(svc.queue().root()).unwrap();
    }
}

/// The cached response is bit-identical to the fresh one and carries
/// the provenance tag; the engine (`run_sweep_resilient`) sees zero
/// work on the hit.
#[test]
fn cached_and_fresh_service_responses_are_bit_identical() {
    let spec = ci_smoke_spec();
    let svc = SweepService::open(temp_root("cache"), ServiceOptions::default()).unwrap();
    svc.submit(&spec).unwrap();
    svc.submit(&spec).unwrap();
    let reports = svc.run_pending(&InProcessBackend).unwrap();
    assert!(!reports[0].from_cache);
    assert!(reports[1].from_cache);
    assert_eq!(reports[0].digest, CI_SMOKE_GOLDEN_DIGEST);
    assert_eq!(reports[1].digest, CI_SMOKE_GOLDEN_DIGEST);
    assert_eq!(reports[0].stats.trials_computed, 16);
    assert_eq!(reports[1].stats.trials_computed, 0);
    fs::remove_dir_all(svc.queue().root()).unwrap();
}

/// Sanity: the spec resolves to the grid a direct caller would build,
/// so the golden digest pins the engine, not the spec plumbing.
#[test]
fn ci_smoke_spec_resolves_to_the_documented_grid() {
    let plan = SweepPlan::resolve(&ci_smoke_spec()).unwrap();
    assert_eq!(plan.configs().len(), 4);
    assert_eq!(plan.trials(), 4);
    assert_eq!(plan.total(), 16);
    assert_eq!(
        plan.base().value(),
        tapeworm::stats::SeedSeq::new(1994).value()
    );
    let direct = run_sweep_resilient(
        plan.configs(),
        plan.trials(),
        plan.base(),
        &SweepOptions::default(),
    );
    assert_eq!(direct.cells().len(), 4);
    assert!(direct.fault_stats().is_clean());
}
