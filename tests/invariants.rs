//! Hand-rolled property tests: seeded random reference streams driven
//! through the trap-driven cache and the host TLB, asserting the core
//! invariants the paper's correctness rests on. No `proptest` — every
//! case is a deterministic function of the seeds below, so failures
//! reproduce exactly.

use tapeworm::core::{CacheConfig, Replacement, SimCache, Tapeworm};
use tapeworm::machine::{Component, Tlb, TlbOutcome};
use tapeworm::mem::{Pfn, PhysAddr, TrapMap, VirtAddr};
use tapeworm::os::Tid;
use tapeworm::stats::{Rng, SeedSeq};
use tapeworm::trace::{Cache2000, Cache2000Config, TracePolicy};

const PAGE: u64 = 4096;

/// Drives a random stream through a full Tapeworm instance and checks
/// the trap-set invariant the whole technique depends on: **a line is
/// trapped iff it is sampled and not simulated-resident**, and every
/// reference is either a hit (no trap) or a miss (trap, then handled).
fn drive_tapeworm(cfg: CacheConfig, seed: u64, pages: u64, refs: u64) {
    let mut tw = Tapeworm::new(cfg, PAGE, SeedSeq::new(seed));
    let mut traps = TrapMap::new(pages * PAGE, 16);
    let tid = Tid::new(1);
    for p in 0..pages {
        // Identity-map page p (vpn == pfn) and register it.
        tw.tw_register_page(&mut traps, tid, Pfn::new(p), p);
    }
    tw.validate_invariant(&traps)
        .expect("registration must establish the invariant");

    let mut rng = SeedSeq::new(seed).derive("refs", 0).rng();
    let mut misses = 0u64;
    let mut hits = 0u64;
    for i in 0..refs {
        let addr = rng.gen_range(0..pages * PAGE) & !3;
        let (va, pa) = (VirtAddr::new(addr), PhysAddr::new(addr));
        // The hardware filter: a reference traps iff the line's trap
        // bit is set; otherwise it proceeds at full speed (a hit, or a
        // location outside the sample).
        if traps.is_trapped(pa) {
            tw.handle_miss(&mut traps, Component::User, tid, va, pa);
            misses += 1;
        } else {
            hits += 1;
        }
        // Spot-check the full invariant periodically (it is O(lines)),
        // and always at the end.
        if i % 997 == 0 || i + 1 == refs {
            tw.validate_invariant(&traps)
                .unwrap_or_else(|e| panic!("invariant broken after {i} refs (seed {seed}): {e}"));
        }
    }
    assert_eq!(misses + hits, refs, "every reference is a hit or a miss");
    assert_eq!(
        tw.stats().raw_total(),
        misses,
        "handler count must equal observed trap count"
    );
    assert!(misses > 0, "a cold cache must miss (seed {seed})");
}

#[test]
fn trap_set_matches_residency_direct_mapped() {
    let cfg = CacheConfig::new(4 * 1024, 16, 1).expect("valid");
    for seed in [1u64, 42, 1994] {
        drive_tapeworm(cfg, seed, 8, 4_000);
    }
}

#[test]
fn trap_set_matches_residency_set_associative() {
    for ways in [2u32, 4] {
        let cfg = CacheConfig::new(8 * 1024, 32, ways).expect("valid");
        drive_tapeworm(cfg, 7 + u64::from(ways), 16, 4_000);
    }
}

/// The simulated cache never displaces the line it just filled: the
/// victim returned by `insert` is always a *different* line, under
/// both replacement policies.
#[test]
fn victim_is_never_the_just_filled_line() {
    for replacement in [Replacement::Fifo, Replacement::Random] {
        let cfg = CacheConfig::new(1024, 16, 4)
            .expect("valid")
            .with_replacement(replacement);
        let mut cache = SimCache::new(cfg, SeedSeq::new(11));
        let mut rng = Rng::from_seed(99);
        let tid = Tid::new(1);
        for _ in 0..5_000 {
            let addr = rng.gen_range(0..64 * 1024u64) & !15;
            let (va, pa) = (VirtAddr::new(addr), PhysAddr::new(addr));
            if let Some(victim) = cache.insert(tid, va, pa) {
                assert_ne!(
                    victim.pa.raw(),
                    pa.raw() & !15u64,
                    "{replacement:?} evicted the line it just inserted"
                );
            }
            // The just-inserted line must be resident.
            assert!(cache.contains_physical(PhysAddr::new(addr)));
        }
    }
}

/// LRU (trace-driven baseline): a line that just hit or filled is the
/// most-recently-used and must survive the very next miss in its set —
/// an immediate re-reference always hits.
#[test]
fn lru_never_evicts_the_most_recent_line() {
    let mut cfg = Cache2000Config::with_geometry(2 * 1024, 16, 4);
    cfg.policy = TracePolicy::Lru;
    let mut c2k = Cache2000::new(cfg);
    let mut rng = Rng::from_seed(1234);
    for _ in 0..20_000 {
        let addr = rng.gen_range(0..32 * 1024u64) & !3;
        let va = VirtAddr::new(addr);
        let _ = c2k.reference(va);
        assert!(
            c2k.reference(va),
            "immediate re-reference of {va} missed under LRU"
        );
    }
    assert_eq!(
        c2k.hits() + c2k.misses(),
        c2k.references(),
        "hits + misses must equal references"
    );
}

/// The host TLB counts every probe as exactly one hit or one miss, and
/// a refilled translation is immediately visible.
#[test]
fn tlb_accounts_every_probe() {
    let mut tlb = Tlb::new(64, 8, PAGE, SeedSeq::new(5));
    let mut rng = Rng::from_seed(55);
    let mut probes = 0u64;
    for _ in 0..10_000 {
        let vpn = rng.gen_range(0..256u64);
        let va = VirtAddr::new(vpn * PAGE);
        probes += 1;
        if let TlbOutcome::Miss = tlb.probe(1, va) {
            tlb.refill(1, va, Pfn::new(vpn));
            probes += 1;
            assert_eq!(
                tlb.probe(1, va),
                TlbOutcome::Hit(Pfn::new(vpn)),
                "refilled translation for vpn {vpn} not visible"
            );
        }
    }
    assert_eq!(tlb.hits() + tlb.misses(), probes);
    assert!(
        tlb.misses() >= 256 - 64,
        "cold misses at least footprint - capacity"
    );
}
