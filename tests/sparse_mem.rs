//! Differential suite for the sparse demand-allocated physical state.
//!
//! The machine's trap bitmap, its per-frame trap counts and the VM's
//! frame refcounts sit on chunked backing that materializes 4 KiB
//! chunks on first write, with untouched chunks sharing one canonical
//! all-zero page. That layout is only legal because it is
//! *bit-identical* to the eagerly materialized (dense) layout — same
//! `TrialResult`, same counters (minus the sparse allocation tallies
//! themselves). This suite pins that equivalence for every simulator
//! mode and for serial and parallel sweeps, exercises the two kill
//! switches (`SystemConfig::with_sparse_mem(false)` and `TW_SPARSE=0`),
//! and property-tests the chunk materialization/dedup invariants and
//! the checkpoint codec's sparse trap-state round trip.

use std::sync::Mutex;

use tapeworm::core::{CacheConfig, TlbSimConfig};
use tapeworm::mem::{PhysAddr, SparseVec, TrapMap, CHUNK_BYTES};
use tapeworm::obs::CounterId;
use tapeworm::sim::{
    decode_trap_state, encode_trap_state, run_sweep, run_trial_observed, ComponentSet, ObsConfig,
    SystemConfig, TrialResult,
};
use tapeworm::stats::SeedSeq;
use tapeworm::workload::Workload;

const SCALE: u64 = 20_000;

/// Serializes the tests that read or write `TW_SPARSE`: the env var is
/// process-global, and the engagement assertions below would misfire
/// if another test flipped it mid-run.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn dm(kb: u64) -> CacheConfig {
    CacheConfig::new(kb * 1024, 16, 1).expect("valid geometry")
}

/// One configuration per simulator mode, same shapes as the golden
/// determinism matrix.
fn modes() -> Vec<(&'static str, SystemConfig)> {
    vec![
        (
            "cache",
            SystemConfig::cache(Workload::Espresso, dm(4)).with_scale(SCALE),
        ),
        (
            "cache-sampled",
            SystemConfig::cache(Workload::Espresso, dm(4))
                .with_components(ComponentSet::user_only())
                .with_sampling(8)
                .with_scale(SCALE),
        ),
        (
            "split",
            SystemConfig::split(Workload::JpegPlay, dm(4), dm(4)).with_scale(SCALE),
        ),
        (
            "two-level",
            SystemConfig::two_level(Workload::Espresso, dm(1), dm(8)).with_scale(SCALE),
        ),
        (
            "tlb",
            SystemConfig::tlb(Workload::MpegPlay, TlbSimConfig::r3000()).with_scale(SCALE),
        ),
        (
            "buffer",
            SystemConfig::kernel_trace_buffer(Workload::MpegPlay, dm(4)).with_scale(SCALE),
        ),
    ]
}

fn flatten(cells: &[tapeworm::sim::TrialSummary]) -> Vec<&TrialResult> {
    cells.iter().flat_map(|c| c.results()).collect()
}

/// Counters that legitimately differ between the two backings: the
/// sparse allocation tallies themselves.
fn is_sparse_tally(id: CounterId) -> bool {
    matches!(
        id,
        CounterId::SparseChunksAllocated | CounterId::ZeroChunksDeduped | CounterId::ChunkFaults
    )
}

/// The acceptance bar: for every simulator mode, a sweep on sparse
/// backing commits `TrialResult`s bit-identical to forced-dense
/// backing, at 1, 4 and 8 worker threads.
#[test]
fn sparse_backing_is_bit_identical_to_dense() {
    for (label, cfg) in modes() {
        let dense_cfgs = vec![cfg.clone().with_sparse_mem(false)];
        let sparse_cfgs = vec![cfg];
        let dense = run_sweep(&dense_cfgs, 4, SeedSeq::new(1994), 1);
        for threads in [1usize, 4, 8] {
            let sparse = run_sweep(&sparse_cfgs, 4, SeedSeq::new(1994), threads);
            assert_eq!(
                flatten(&dense),
                flatten(&sparse),
                "{label}: sparse backing diverged from dense at threads={threads}"
            );
            let (dm, sm) = (&dense[0].metrics(), &sparse[0].metrics());
            for (id, dv) in dm.counters.iter() {
                if is_sparse_tally(id) {
                    continue;
                }
                assert_eq!(
                    dv,
                    sm.counters.get(id),
                    "{label}: counter {id} diverged at threads={threads}"
                );
            }
            assert_eq!(dm.phases, sm.phases, "{label}: phase cycles diverged");
        }
    }
}

/// Sparse backing actually engages everywhere: every mode demand-
/// materializes some chunks and leaves the untouched remainder
/// deduped; the config kill switch pre-materializes everything and
/// never faults.
#[test]
fn sparse_backing_engages_in_every_mode() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    std::env::remove_var("TW_SPARSE");
    let base = SeedSeq::new(1994);
    let trial = base.derive("sparse", 0).derive("trial", 0);

    for (label, cfg) in modes() {
        let (_, m) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
        let faults = m.counters.get(CounterId::ChunkFaults);
        let chunks = m.counters.get(CounterId::SparseChunksAllocated);
        let deduped = m.counters.get(CounterId::ZeroChunksDeduped);
        assert!(faults > 0, "{label}: no chunk was ever demand-materialized");
        assert!(chunks > 0, "{label}: no chunk is privately backed");
        assert!(
            deduped > 0,
            "{label}: expected untouched chunks to share the canonical page"
        );

        let (_, m) = run_trial_observed(
            &cfg.with_sparse_mem(false),
            base,
            trial,
            ObsConfig::default(),
        );
        assert_eq!(
            m.counters.get(CounterId::ChunkFaults),
            0,
            "{label}: dense mode must never demand-fault"
        );
        assert_eq!(
            m.counters.get(CounterId::ZeroChunksDeduped),
            0,
            "{label}: dense mode dedups nothing"
        );
    }
}

/// `TW_SPARSE=0` is the no-recompile kill switch: it forces dense
/// backing (observable in the counters) without perturbing any result.
#[test]
fn tw_sparse_env_knob_forces_dense_backing() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    let base = SeedSeq::new(1994);
    let trial = base.derive("sparse", 0).derive("trial", 0);
    let cfg = SystemConfig::cache(Workload::Espresso, dm(4)).with_scale(SCALE);

    std::env::remove_var("TW_SPARSE");
    let (on_result, on_metrics) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
    assert!(on_metrics.counters.get(CounterId::ChunkFaults) > 0);

    std::env::set_var("TW_SPARSE", "0");
    let (off_result, off_metrics) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
    std::env::remove_var("TW_SPARSE");

    assert_eq!(off_metrics.counters.get(CounterId::ChunkFaults), 0);
    assert_eq!(off_metrics.counters.get(CounterId::ZeroChunksDeduped), 0);
    assert_eq!(on_result, off_result, "TW_SPARSE=0 perturbed the result");
    // Any value other than "0" leaves sparse backing on.
    std::env::set_var("TW_SPARSE", "1");
    let (_, again) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
    std::env::remove_var("TW_SPARSE");
    assert!(again.counters.get(CounterId::ChunkFaults) > 0);
}

/// SplitMix64 — the repo's stand-in for a property-test generator
/// (the workspace deliberately carries no external dependencies).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Property: under random stores, a sparse vector (a) agrees with a
/// plain `Vec` reference model element for element, (b) keeps its
/// chunk accounting consistent (`allocated + deduped == chunks`,
/// faults only grow), and (c) never materializes a chunk for a store
/// of the fill value into untouched territory.
#[test]
fn chunk_materialization_and_dedup_invariants_hold_under_random_ops() {
    let mut s = 0x5eed_u64;
    for round in 0..8 {
        let len = 1 + (splitmix(&mut s) % 10_000) as usize;
        let mut v: SparseVec<u64> = SparseVec::new(len, 0, false);
        let mut reference = vec![0u64; len];
        let mut last_faults = 0;
        for _ in 0..2_000 {
            let i = (splitmix(&mut s) as usize) % len;
            // Bias toward zero stores so re-canonicalization sees work.
            let value = match splitmix(&mut s) % 4 {
                0 | 1 => 0,
                _ => splitmix(&mut s),
            };
            v.store(i, value);
            reference[i] = value;

            let stats = v.stats();
            assert_eq!(
                stats.chunks_allocated + stats.zero_chunks_deduped,
                v.chunks() as u64,
                "round {round}: chunk accounting must partition the table"
            );
            assert!(stats.chunk_faults >= last_faults, "faults are lifetime");
            last_faults = stats.chunk_faults;
        }
        for (i, &want) in reference.iter().enumerate() {
            assert_eq!(v.load(i), want, "round {round}: index {i}");
        }
        // A store of the fill value into a canonical chunk is a no-op.
        let before = v.stats();
        let elems_per_chunk = CHUNK_BYTES / std::mem::size_of::<u64>();
        if v.chunks() > 1 && before.zero_chunks_deduped > 0 {
            let canonical = (0..v.chunks())
                .find(|&c| v.chunk_is_canonical(c))
                .expect("a deduped chunk exists");
            let idx = (canonical * elems_per_chunk).min(len - 1);
            if v.chunk_is_canonical(idx / elems_per_chunk) {
                v.store(idx, 0);
                assert_eq!(v.stats(), before, "fill store must not materialize");
            }
        }
        // Compaction reclaims every all-zero chunk and changes nothing
        // observable.
        v.compact();
        let after = v.stats();
        assert_eq!(
            after.chunks_allocated + after.zero_chunks_deduped,
            v.chunks() as u64
        );
        for (i, &want) in reference.iter().enumerate() {
            assert_eq!(v.load(i), want, "round {round} post-compact: index {i}");
        }
    }
}

/// Property: the checkpoint codec round-trips a randomly mutated trap
/// map — state, counts and event counters — through its hex payload,
/// in both sparse and dense mode, and the payload of a sparse map
/// stays proportional to touched state.
#[test]
fn checkpoint_codec_round_trips_random_trap_state() {
    let mut s = 0xc0de_u64;
    for round in 0..16 {
        let sparse = round % 2 == 0;
        let mem_bytes = 1u64 << (16 + (splitmix(&mut s) % 8)); // 64 KiB – 8 MiB
        let mut map = TrapMap::with_mode(mem_bytes, 16, sparse);
        for _ in 0..64 {
            let pa = PhysAddr::new(splitmix(&mut s) % mem_bytes);
            let span = 16 * (1 + splitmix(&mut s) % 64);
            let span = span.min(mem_bytes - pa.raw());
            if span == 0 {
                continue;
            }
            if splitmix(&mut s) % 3 == 0 {
                map.clear_range(pa, span);
            } else {
                map.set_range(pa, span);
            }
        }
        let payload = encode_trap_state(&map);
        let restored = decode_trap_state(&payload)
            .unwrap_or_else(|| panic!("round {round}: round trip failed"));
        assert_eq!(restored, map, "round {round}");
        assert_eq!(restored.count(), map.count(), "round {round}");
        assert_eq!(restored.set_events(), map.set_events(), "round {round}");
        assert_eq!(restored.clear_events(), map.clear_events(), "round {round}");
        // Spot-check granule state agreement at random probes.
        for _ in 0..64 {
            let pa = PhysAddr::new(splitmix(&mut s) % mem_bytes);
            assert_eq!(restored.is_trapped(pa), map.is_trapped(pa), "round {round}");
            assert_eq!(
                restored.frame_trapped(pa),
                map.frame_trapped(pa),
                "round {round}"
            );
        }
    }
    // Payload size scales with touched state, not simulated memory.
    let mut huge = TrapMap::new(64 << 30, 16);
    huge.set_range(PhysAddr::new(33 << 30), 256);
    let payload = encode_trap_state(&huge);
    assert!(
        payload.len() < 2048,
        "one hot page in 64 GiB must encode compactly, got {} bytes",
        payload.len()
    );
    assert_eq!(decode_trap_state(&payload).expect("round trip"), huge);
}
