//! The planner's honesty contract, proven differentially against the
//! full engine:
//!
//! (a) `plan = full` is digest-identical to the existing engine for
//!     every thread count — the planner in full mode *is* the engine.
//! (b) Every trap-simulated cell of a pruned sweep is bit-identical to
//!     the same cell of a full sweep (same seeds, same trial order,
//!     same committed record encoding).
//! (c) Every interpolated cell's miss-count error is within its own
//!     declared bound on the paper's Table 8/9-shaped grids.
//! (d) Every early-stopped cell's confidence interval covers the mean
//!     the cell would have reported had all trials run.
//!
//! Plus the kill switch: `TW_PLAN=0` restores exact engine behavior no
//! matter what the caller asked for.

use std::sync::Mutex;

use tapeworm::core::{CacheConfig, Indexing};
use tapeworm::sim::{
    encode_outcome, fold_outcomes, run_sweep_planned, run_sweep_resilient_observed, ComponentSet,
    PlanMode, PlannedCell, PlannerConfig, SweepOptions, SystemConfig, TrialOutcome, TrialSummary,
};
use tapeworm::stats::SeedSeq;
use tapeworm::workload::Workload;

/// Serializes tests that touch the `TW_PLAN` process environment.
static ENV_LOCK: Mutex<()> = Mutex::new(());

const BASE_SEED: u64 = 1994;

fn dm4(kb: u64, indexing: Indexing) -> CacheConfig {
    CacheConfig::new(kb * 1024, 16, 1)
        .expect("valid geometry")
        .with_indexing(indexing)
}

/// The Table 9 shape: mpeg_play user task over physically-indexed
/// direct-mapped caches 4K–128K — the grid where page-allocation luck
/// is the variance source and the Kessler model earns its keep.
fn tab9_grid() -> Vec<SystemConfig> {
    [4u64, 8, 16, 32, 64, 128]
        .iter()
        .map(|&kb| {
            SystemConfig::cache(Workload::MpegPlay, dm4(kb, Indexing::Physical))
                .with_components(ComponentSet::user_only())
                .with_scale(20_000)
        })
        .collect()
}

/// The Table 8 shape: espresso user task, virtually-indexed caches
/// 1K–32K with the given set-sampling denominator. Virtual indexing
/// makes the model confident (no placement luck), so interior cells
/// interpolate; sampling = 1 makes every trial identical.
fn tab8_grid(sampling: u64) -> Vec<SystemConfig> {
    [1u64, 2, 4, 8, 16, 32]
        .iter()
        .map(|&kb| {
            SystemConfig::cache(Workload::Espresso, dm4(kb, Indexing::Virtual))
                .with_components(ComponentSet::user_only())
                .with_scale(20_000)
                .with_sampling(sampling)
        })
        .collect()
}

/// Ground truth: the full engine's outcomes and folded summaries.
fn full_sweep(configs: &[SystemConfig], trials: usize) -> (Vec<TrialOutcome>, Vec<TrialSummary>) {
    let mut outcomes = Vec::with_capacity(configs.len() * trials);
    run_sweep_resilient_observed(
        configs,
        trials,
        SeedSeq::new(BASE_SEED),
        &SweepOptions::default(),
        |_, o| outcomes.push(o.clone()),
    );
    let (cells, failed) = fold_outcomes(trials, outcomes.clone());
    assert!(failed.is_empty(), "ground-truth sweep must be clean");
    (outcomes, cells)
}

/// (a) Full mode delegates to the engine: bit-identical outcomes and
/// summaries for TW_THREADS-equivalent worker counts 1, 4 and 8.
#[test]
fn full_mode_is_bit_identical_to_the_engine_for_all_thread_counts() {
    let configs = tab9_grid();
    let trials = 4;
    let (engine, engine_cells) = full_sweep(&configs, trials);
    for threads in [1usize, 4, 8] {
        let planned = run_sweep_planned(
            &configs,
            trials,
            SeedSeq::new(BASE_SEED),
            &SweepOptions::default().with_threads(threads),
            &PlannerConfig::full(),
        );
        assert_eq!(planned.mode(), PlanMode::Full);
        assert_eq!(planned.simulated_outcomes().len(), engine.len());
        for (index, outcome) in planned.simulated_outcomes() {
            assert_eq!(
                encode_outcome(*index, outcome),
                encode_outcome(*index, &engine[*index]),
                "threads={threads} index={index}"
            );
        }
        assert_eq!(planned.cells().len(), engine_cells.len());
        for (cell, engine_cell) in planned.cells().iter().zip(&engine_cells) {
            let PlannedCell::Simulated {
                summary,
                trials_run,
                early_stop,
            } = cell
            else {
                panic!("full mode must not interpolate");
            };
            assert_eq!(*trials_run, trials);
            assert!(early_stop.is_none());
            assert_eq!(summary.misses().mean(), engine_cell.misses().mean());
            assert_eq!(summary.slowdowns().mean(), engine_cell.slowdowns().mean());
        }
        assert_eq!(planned.cells_simulated(), configs.len() as u64);
        assert_eq!(planned.cells_interpolated(), 0);
        assert_eq!(planned.trials_saved(), 0);
    }
}

/// (b) Pruned simulated cells are bit-identical to the full sweep's
/// cells at the same global indices — same seeds, same trial order,
/// same encoding. CI bound 0 isolates pure pruning (no early stops).
#[test]
fn pruned_simulated_cells_are_bit_identical_to_the_full_sweep() {
    let configs = tab9_grid();
    let trials = 4;
    let (engine, _) = full_sweep(&configs, trials);
    let planned = run_sweep_planned(
        &configs,
        trials,
        SeedSeq::new(BASE_SEED),
        &SweepOptions::default(),
        &PlannerConfig::pruned().with_ci_bound(0.0),
    );
    assert_eq!(planned.mode(), PlanMode::Pruned);
    assert!(planned.cells_interpolated() > 0, "grid must actually prune");
    assert!(planned.trials_saved() > 0);
    assert_eq!(planned.ci_early_stops(), 0, "ci_bound = 0 disables stops");
    assert!(
        !planned.simulated_outcomes().is_empty(),
        "endpoints always simulate"
    );
    for (index, outcome) in planned.simulated_outcomes() {
        assert_eq!(
            encode_outcome(*index, outcome),
            encode_outcome(*index, &engine[*index]),
            "simulated cell at index {index} must be ground truth"
        );
    }
    // Bookkeeping adds up: every cell is either simulated or
    // interpolated, and saved trials = the interpolated cells' trials.
    assert_eq!(
        planned.cells_simulated() + planned.cells_interpolated(),
        configs.len() as u64
    );
    assert_eq!(
        planned.trials_saved(),
        planned.cells_interpolated() * trials as u64
    );
}

/// (c) Every interpolated cell's miss estimate is within its declared
/// bound of the full sweep's measured mean, on both table shapes.
#[test]
fn interpolated_cells_stay_within_their_declared_bound() {
    for (label, configs, trials) in [
        ("tab9-physical", tab9_grid(), 4usize),
        ("tab8-virtual-sampled", tab8_grid(8), 4),
        ("tab8-virtual-unsampled", tab8_grid(1), 4),
    ] {
        let (_, truth) = full_sweep(&configs, trials);
        let planned = run_sweep_planned(
            &configs,
            trials,
            SeedSeq::new(BASE_SEED),
            &SweepOptions::default(),
            &PlannerConfig::pruned().with_ci_bound(0.0),
        );
        let mut interpolated = 0;
        for (c, cell) in planned.cells().iter().enumerate() {
            let PlannedCell::Interpolated(e) = cell else {
                continue;
            };
            interpolated += 1;
            let actual = truth[c].misses().mean();
            let error = (e.misses - actual).abs();
            assert!(
                error <= e.miss_bound,
                "{label} config {c}: estimate {} vs measured {actual} — \
                 error {error} exceeds declared bound {}",
                e.misses,
                e.miss_bound
            );
            assert!(e.miss_bound.is_finite() && e.miss_bound > 0.0);
            assert!(e.left < c && c < e.right, "{label} config {c}");
        }
        assert!(interpolated > 0, "{label}: nothing interpolated");
    }
}

/// (d) Every early-stopped cell's reported CI covers the mean the cell
/// would have reported with all trials. The unsampled virtual grid has
/// zero trial variance, so its simulated cells *must* stop at
/// `min_trials` with an exact (zero-width) interval; the sampled grid
/// exercises real spread.
#[test]
fn early_stopped_cells_cover_the_full_trial_mean() {
    let trials = 8;
    let mut early_stops_seen = 0;
    for (label, configs, bound, must_stop) in [
        ("unsampled", tab8_grid(1), 0.10, true),
        ("sampled", tab8_grid(8), 0.35, false),
    ] {
        let (_, truth) = full_sweep(&configs, trials);
        let planned = run_sweep_planned(
            &configs,
            trials,
            SeedSeq::new(BASE_SEED),
            &SweepOptions::default(),
            &PlannerConfig::pruned().with_ci_bound(bound),
        );
        if must_stop {
            assert!(
                planned.ci_early_stops() > 0,
                "{label}: zero-variance cells must stop at min_trials"
            );
        }
        for (c, cell) in planned.cells().iter().enumerate() {
            let PlannedCell::Simulated {
                trials_run,
                early_stop: Some(ci),
                ..
            } = cell
            else {
                continue;
            };
            early_stops_seen += 1;
            assert!(*trials_run < trials, "{label} config {c}");
            let full_mean = truth[c].misses().mean();
            assert!(
                ci.contains(full_mean),
                "{label} config {c}: stopped CI [{}, {}] after {trials_run} trials \
                 does not cover the {trials}-trial mean {full_mean}",
                ci.low(),
                ci.high()
            );
        }
        // Early-stopped cells still save trials over the full sweep.
        if planned.ci_early_stops() > 0 {
            assert!(planned.trials_saved() >= planned.cells_interpolated() * trials as u64);
        }
    }
    assert!(early_stops_seen > 0);
}

/// The kill switch: `TW_PLAN=0` forces full-engine behavior over a
/// pruned request, `TW_PLAN=pruned` forces the planner over a full
/// request, and unset leaves the caller's choice alone.
#[test]
fn tw_plan_kill_switch_overrides_the_requested_mode() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    let configs = tab9_grid();
    let trials = 3;
    let (engine, _) = full_sweep(&configs, trials);

    std::env::set_var("TW_PLAN", "0");
    let forced_full = run_sweep_planned(
        &configs,
        trials,
        SeedSeq::new(BASE_SEED),
        &SweepOptions::default(),
        &PlannerConfig::pruned(),
    );
    std::env::set_var("TW_PLAN", "pruned");
    let forced_pruned = run_sweep_planned(
        &configs,
        trials,
        SeedSeq::new(BASE_SEED),
        &SweepOptions::default(),
        &PlannerConfig::full(),
    );
    std::env::remove_var("TW_PLAN");

    assert_eq!(forced_full.mode(), PlanMode::Full);
    assert_eq!(forced_full.simulated_outcomes().len(), engine.len());
    for (index, outcome) in forced_full.simulated_outcomes() {
        assert_eq!(
            encode_outcome(*index, outcome),
            encode_outcome(*index, &engine[*index]),
            "TW_PLAN=0 must restore exact engine behavior"
        );
    }
    assert_eq!(forced_pruned.mode(), PlanMode::Pruned);
    assert!(forced_pruned.cells_interpolated() > 0);
}
