//! Cross-validation of the fast trap bitmap against the full-fidelity
//! ECC hardware model.
//!
//! The simulator's hot path uses `TrapMap` (one bit per line). The
//! reference hardware is `EccMemory`, where a trap is literally a
//! flipped check bit decoded through the SECDED syndrome. This test
//! runs the same Figure 1 miss loop against both and asserts the
//! *entire miss sequence* is identical — the bitmap is a sound
//! abstraction of the ECC mechanism end to end, not just per
//! operation.

use tapeworm::core::{CacheConfig, SimCache, Tapeworm};
use tapeworm::machine::Component;
use tapeworm::mem::{EccMemory, MemoryEvent, Pfn, PhysAddr, TrapMap, VirtAddr};
use tapeworm::os::Tid;
use tapeworm::stats::SeedSeq;
use tapeworm::workload::{ProcStream, RefStream, StreamParams};

const MEM_BYTES: u64 = 256 * 1024;
const PAGE: u64 = 4096;
const LINE: u64 = 16;

/// Drives the fast path: Tapeworm + TrapMap. Returns the sequence of
/// missing line indices.
fn run_fast(cache: CacheConfig, refs: &[u64]) -> Vec<u64> {
    let mut tw = Tapeworm::new(cache, PAGE, SeedSeq::new(1));
    let mut traps = TrapMap::new(MEM_BYTES, LINE);
    let tid = Tid::new(1);
    for p in 0..MEM_BYTES / PAGE {
        tw.tw_register_page(&mut traps, tid, Pfn::new(p), p);
    }
    let mut misses = Vec::new();
    for &a in refs {
        let pa = PhysAddr::new(a);
        if traps.is_trapped(pa) {
            tw.handle_miss(&mut traps, Component::User, tid, VirtAddr::new(a), pa);
            misses.push(a / LINE);
        }
    }
    misses
}

/// Drives the exact path: the same replacement state machine, but trap
/// state lives in real per-word ECC check bits, set and cleared
/// through the diagnostic interface and *detected by decoding*.
fn run_exact(cache: CacheConfig, refs: &[u64]) -> Vec<u64> {
    let mut mem = EccMemory::new(MEM_BYTES);
    let mut sim = SimCache::new(cache, SeedSeq::new(1));
    let tid = Tid::new(1);
    // tw_register_page: arm every line of every page.
    mem.set_trap(PhysAddr::new(0), MEM_BYTES).expect("in range");

    let mut misses = Vec::new();
    for &a in refs {
        let pa = PhysAddr::new(a);
        match mem.read_word(pa).expect("in range") {
            MemoryEvent::TapewormTrap(_) => {
                // Figure 1: miss++, clear trap, replace, trap victim.
                misses.push(a / LINE);
                mem.clear_trap(pa.line_base(LINE), LINE).expect("in range");
                if let Some(victim) = sim.insert(tid, VirtAddr::new(a), pa) {
                    mem.set_trap(victim.pa, LINE).expect("in range");
                }
            }
            MemoryEvent::Clean(_) => {}
            other => panic!("unexpected memory event {other:?}"),
        }
    }
    misses
}

fn workload_refs(seed: u64, n: usize) -> Vec<u64> {
    let params = StreamParams {
        footprint_bytes: 64 * 1024,
        proc_bytes: 256,
        zipf_exponent: 0.8,
        hot_fraction: 0.2,
        hot_prob: 0.7,
        loop_min: 1,
        loop_max: 3,
    };
    let mut stream = ProcStream::new(0, params, SeedSeq::new(seed));
    let mut refs = Vec::with_capacity(n);
    while refs.len() < n {
        let run = stream.next_run();
        for va in run.addresses() {
            if refs.len() >= n {
                break;
            }
            refs.push(va.raw());
        }
    }
    refs
}

#[test]
fn fast_and_exact_paths_agree_on_every_miss() {
    for (seed, cache_bytes, ways) in [(1u64, 4096u64, 1u32), (2, 8192, 2), (3, 1024, 1)] {
        let cache = CacheConfig::new(cache_bytes, LINE, ways).unwrap();
        let refs = workload_refs(seed, 30_000);
        let fast = run_fast(cache, &refs);
        let exact = run_exact(cache, &refs);
        assert_eq!(
            fast.len(),
            exact.len(),
            "miss counts diverge for {cache_bytes}B/{ways}-way"
        );
        assert_eq!(fast, exact, "miss sequences diverge");
    }
}

#[test]
fn exact_path_survives_benign_data_writes() {
    // Writing data through the normal (non-diagnostic) path regenerates
    // check bits. Under the ECC model, writes to untrapped words must
    // not disturb any trap state elsewhere.
    let cache = CacheConfig::new(4096, LINE, 1).unwrap();
    let refs = workload_refs(7, 5_000);
    let mut mem = EccMemory::new(MEM_BYTES);
    mem.set_trap(PhysAddr::new(0), MEM_BYTES).unwrap();
    // Clear one line and write into it repeatedly.
    mem.clear_trap(PhysAddr::new(0x100), LINE).unwrap();
    for i in 0..64u64 {
        mem.write_word(PhysAddr::new(0x100 + (i % 4) * 4), i as u32)
            .unwrap();
    }
    // Every other line still traps.
    assert!(mem.is_trapped(PhysAddr::new(0x200)).unwrap());
    assert!(!mem.is_trapped(PhysAddr::new(0x104)).unwrap());
    let _ = (cache, refs);
}
