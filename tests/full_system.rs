//! Cross-crate integration: wire machine + OS + Tapeworm by hand (no
//! experiment engine) and verify the pieces compose the way the paper
//! describes.

use tapeworm::core::{CacheConfig, Tapeworm};
use tapeworm::machine::{AccessKind, Component, FetchOutcome, Machine, MachineConfig};
use tapeworm::mem::{PageSize, SequentialAllocator, VirtAddr};
use tapeworm::os::{Os, OsConfig, TapewormAttrs, Tid, Touch};
use tapeworm::stats::SeedSeq;

fn boot() -> (Os, Machine) {
    let os = Os::boot(
        OsConfig {
            page_size: PageSize::DEFAULT,
            frames: 256,
            sparse_mem: true,
        },
        Box::new(SequentialAllocator::new(256)),
    );
    let machine = Machine::new(MachineConfig {
        mem_bytes: 256 * 4096,
        trap_granule: 16,
        clock_period: 1_000_000,
        breakpoint_registers: 4,
        write_policy: tapeworm::mem::WritePolicy::NoAllocateOnWrite,
        sparse_mem: true,
    });
    (os, machine)
}

/// One reference through the whole stack: VM translation, trap check,
/// miss handling.
fn reference(
    os: &mut Os,
    machine: &mut Machine,
    tw: &mut Tapeworm,
    tid: Tid,
    va: VirtAddr,
) -> bool {
    let pa = match os.touch(tid, va).expect("memory available") {
        Touch::Ok { pa, registered } => {
            if let Some(ev) = registered {
                tw.on_vm_event(machine.traps_mut(), ev);
            }
            pa
        }
        Touch::PageTrap { .. } => unreachable!("cache mode never clears valid bits"),
    };
    match machine.access(AccessKind::IFetch, va, pa) {
        FetchOutcome::EccTrap => {
            tw.handle_miss(machine.traps_mut(), Component::User, tid, va, pa);
            true
        }
        FetchOutcome::Run => false,
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn manual_stack_maintains_the_invariant() {
    let (mut os, mut machine) = boot();
    let cfg = CacheConfig::new(1024, 16, 1).unwrap();
    let mut tw = Tapeworm::new(cfg, 4096, SeedSeq::new(1));
    let task = os.spawn_user().unwrap();
    os.tw_attributes(
        task,
        TapewormAttrs {
            simulate: true,
            inherit: false,
        },
    )
    .unwrap();

    let mut misses = 0;
    for i in 0..50_000u64 {
        // Walk 8 KiB of code: 8x the simulated cache.
        let va = VirtAddr::new((i * 4) % 8192);
        if reference(&mut os, &mut machine, &mut tw, task, va) {
            misses += 1;
        }
        if i % 10_000 == 0 {
            tw.validate_invariant(machine.traps()).unwrap();
        }
    }
    tw.validate_invariant(machine.traps()).unwrap();
    assert!(misses >= 8192 / 16, "at least the cold misses");
    assert_eq!(tw.stats().raw_total(), misses);
    // A sequential scan over 8x the cache size thrashes a DM cache:
    // every line re-misses on every lap.
    assert!(
        misses > 10 * (8192 / 16),
        "sequential over-capacity scan must thrash, got {misses}"
    );
}

#[test]
fn unsimulated_tasks_never_reach_the_simulator() {
    let (mut os, mut machine) = boot();
    let cfg = CacheConfig::new(1024, 16, 1).unwrap();
    let mut tw = Tapeworm::new(cfg, 4096, SeedSeq::new(1));
    let task = os.spawn_user().unwrap(); // default attrs: not simulated

    for i in 0..1000u64 {
        let va = VirtAddr::new((i * 4) % 4096);
        let missed = reference(&mut os, &mut machine, &mut tw, task, va);
        assert!(!missed, "untracked task must never trap");
    }
    assert_eq!(tw.stats().raw_total(), 0);
    assert_eq!(tw.registered_pages(), 0);
}

#[test]
fn task_exit_cleans_up_the_tapeworm_domain() {
    let (mut os, mut machine) = boot();
    let cfg = CacheConfig::new(4096, 16, 1).unwrap();
    let mut tw = Tapeworm::new(cfg, 4096, SeedSeq::new(1));
    let shell = os.spawn_user().unwrap();
    os.tw_attributes(
        shell,
        TapewormAttrs {
            simulate: false,
            inherit: true,
        },
    )
    .unwrap();
    let child = os.fork(shell).unwrap();
    assert!(os.is_simulated(child));

    for i in 0..512u64 {
        reference(&mut os, &mut machine, &mut tw, child, VirtAddr::new(i * 16));
    }
    assert!(tw.registered_pages() > 0);
    let traps_before = machine.traps().count();
    assert!(traps_before > 0 || tw.stats().raw_total() > 0);

    for ev in os.exit(child).unwrap() {
        tw.on_vm_event(machine.traps_mut(), ev);
    }
    assert_eq!(tw.registered_pages(), 0);
    assert_eq!(machine.traps().count(), 0, "all traps cleared at exit");
    tw.validate_invariant(machine.traps()).unwrap();
}

#[test]
fn fork_tree_inheritance_spans_generations() {
    let (mut os, _machine) = boot();
    let shell = os.spawn_user().unwrap();
    os.tw_attributes(
        shell,
        TapewormAttrs {
            simulate: false,
            inherit: true,
        },
    )
    .unwrap();
    // A three-level fork tree like a multi-stage compiler (§3.2).
    let cc = os.fork(shell).unwrap();
    let cpp = os.fork(cc).unwrap();
    let ld = os.fork(cpp).unwrap();
    for tid in [cc, cpp, ld] {
        assert!(os.is_simulated(tid), "{tid} must inherit simulation");
    }
    assert!(!os.is_simulated(shell));
}
