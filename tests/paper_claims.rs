//! End-to-end assertions of the paper's headline claims, at reduced
//! instruction scale so the suite stays fast.

use tapeworm::core::{CacheConfig, Indexing};
use tapeworm::machine::Component;
use tapeworm::sim::compare::{breakeven_miss_ratio, run_trace_driven};
use tapeworm::sim::{run_trial, ComponentSet, SystemConfig};
use tapeworm::stats::trials::run_trials;
use tapeworm::stats::SeedSeq;
use tapeworm::trace::TracePolicy;
use tapeworm::workload::Workload;

const SCALE: u64 = 2000;

#[allow(non_snake_case)]
fn BASE() -> SeedSeq {
    SeedSeq::new(1994)
}

fn dm4(kb: u64) -> CacheConfig {
    CacheConfig::new(kb * 1024, 16, 1).unwrap()
}

/// Abstract: "Tapeworm typically slows a system down by less than an
/// order of magnitude (10x) when cache miss ratios are under 10%, and
/// slowdowns approach zero as miss ratios decrease."
#[test]
fn slowdown_claim_from_the_abstract() {
    for kb in [1u64, 4, 64] {
        let cfg = SystemConfig::cache(Workload::MpegPlay, dm4(kb))
            .with_components(ComponentSet::user_only())
            .with_scale(SCALE);
        let r = run_trial(&cfg, BASE(), SeedSeq::new(1));
        let user_ratio = r.misses(Component::User) / (r.instructions as f64 * 0.446);
        if user_ratio < 0.10 {
            assert!(r.slowdown() < 10.0, "{kb}K: slowdown {}", r.slowdown());
        }
    }
    // Large cache: slowdown effectively zero.
    let cfg = SystemConfig::cache(Workload::MpegPlay, dm4(256))
        .with_components(ComponentSet::user_only())
        .with_scale(SCALE);
    let r = run_trial(&cfg, BASE(), SeedSeq::new(1));
    assert!(r.slowdown() < 1.0, "got {}", r.slowdown());
}

/// Figure 2: Tapeworm beats the trace-driven pipeline at every cache
/// size in the sweep, and the trace pipeline's slowdown is roughly
/// flat while Tapeworm's decays.
#[test]
fn figure2_shape() {
    let mut tw_slowdowns = Vec::new();
    let mut tr_slowdowns = Vec::new();
    for kb in [1u64, 8, 64] {
        let cache = dm4(kb);
        let cfg = SystemConfig::cache(Workload::MpegPlay, cache)
            .with_components(ComponentSet::user_only())
            .with_scale(SCALE);
        tw_slowdowns.push(run_trial(&cfg, BASE(), SeedSeq::new(2)).slowdown());
        tr_slowdowns.push(
            run_trace_driven(&cfg, cache, TracePolicy::Lru, BASE())
                .unwrap()
                .slowdown,
        );
    }
    for (tw, tr) in tw_slowdowns.iter().zip(&tr_slowdowns) {
        assert!(tw < tr, "tapeworm {tw} must beat trace {tr}");
    }
    // Tapeworm decays by at least an order of magnitude over the sweep.
    assert!(tw_slowdowns[0] > 10.0 * tw_slowdowns[2]);
    // Trace-driven stays within a ~1.5x band.
    assert!(tr_slowdowns[0] / tr_slowdowns[2] < 1.5);
}

/// §4.1: the break-even ratio between the approaches is about 4 hits
/// per miss.
#[test]
fn breakeven_claim() {
    let r = breakeven_miss_ratio(246, 53);
    let hits_per_miss = 1.0 / r - 1.0;
    assert!((3.0..5.0).contains(&hits_per_miss), "got {hits_per_miss}");
}

/// Table 6: for every workload, all-activity misses exceed the sum of
/// the dedicated components (interference is positive), and for the
/// OS-intensive suites the system components out-miss the user tasks.
#[test]
fn table6_structure() {
    for w in [Workload::Ousterhout, Workload::Xlisp] {
        let run = |set: ComponentSet| {
            run_trial(
                &SystemConfig::cache(w, dm4(4))
                    .with_components(set)
                    .with_scale(SCALE),
                BASE(),
                SeedSeq::new(3),
            )
        };
        let user = run(ComponentSet::user_only()).total_misses();
        let servers = run(ComponentSet::servers_only()).total_misses();
        let kernel = run(ComponentSet::kernel_only()).total_misses();
        let all = run(ComponentSet::all()).total_misses();
        assert!(all > user + servers + kernel, "{w}: no interference");
        if w == Workload::Ousterhout {
            assert!(servers + kernel > 5.0 * user, "{w}: system must dominate");
        } else {
            assert!(user > servers + kernel, "{w}: user must dominate");
        }
    }
}

/// Table 6 validation: trap-driven user miss counts equal the
/// trace-driven counts on the identical stream (virtually indexed,
/// matching replacement).
#[test]
fn user_component_validates_against_traces() {
    for w in [Workload::Espresso, Workload::Xlisp] {
        let cache = dm4(4).with_indexing(Indexing::Virtual);
        let cfg = SystemConfig::cache(w, cache)
            .with_components(ComponentSet::user_only())
            .with_scale(SCALE);
        let tw = run_trial(&cfg, BASE(), SeedSeq::new(4));
        let tr = run_trace_driven(&cfg, cache, TracePolicy::Fifo, BASE()).unwrap();
        assert_eq!(
            tw.misses(Component::User) as u64,
            tr.misses,
            "{w}: counts must agree exactly"
        );
    }
}

/// Tables 8-10: the variance taxonomy. Sampling and physical indexing
/// produce trial-to-trial spread; virtual indexing without sampling is
/// exactly repeatable.
#[test]
fn variance_taxonomy() {
    let spread = |cfg: SystemConfig, tag: u64| {
        let set = run_trials(BASE().derive("variance", tag), 5, |trial| {
            run_trial(&cfg, BASE(), trial).total_misses()
        })
        .expect("five trials");
        set.summary().stddev_pct_of_mean()
    };
    // Physically-indexed, cache > page: page-allocation variance.
    let phys = spread(
        SystemConfig::cache(Workload::MpegPlay, dm4(32))
            .with_components(ComponentSet::user_only())
            .with_scale(SCALE),
        0,
    );
    assert!(phys > 1.0, "physical indexing must vary, s% = {phys}");
    // Sampling on a virtual cache: sampling variance.
    let sampled = spread(
        SystemConfig::cache(Workload::MpegPlay, dm4(2).with_indexing(Indexing::Virtual))
            .with_components(ComponentSet::user_only())
            .with_scale(SCALE)
            .with_sampling(8),
        1,
    );
    assert!(sampled > 0.5, "sampling must vary, s% = {sampled}");
    // Virtual + unsampled: zero variance.
    let clean = spread(
        SystemConfig::cache(Workload::MpegPlay, dm4(32).with_indexing(Indexing::Virtual))
            .with_components(ComponentSet::user_only())
            .with_scale(SCALE),
        2,
    );
    assert_eq!(clean, 0.0, "virtual unsampled must be deterministic");
}

/// Figure 4: more time dilation, more measured misses.
#[test]
fn dilation_increases_misses() {
    let mut undilated = SystemConfig::cache(Workload::MpegPlay, dm4(4)).with_scale(SCALE);
    undilated.dilate = false;
    let base_misses = run_trial(&undilated, BASE(), SeedSeq::new(5)).total_misses();

    let mut dilated = SystemConfig::cache(Workload::MpegPlay, dm4(4)).with_scale(SCALE);
    dilated.cost = tapeworm::sim::CostKind::UnoptimizedC; // extreme dilation
    let r = run_trial(&dilated, BASE(), SeedSeq::new(5));
    assert!(
        r.total_misses() > base_misses * 1.02,
        "dilated {} vs baseline {base_misses}",
        r.total_misses()
    );
}

/// Golden miss counts at SCALE=2000. These pin the entire simulation
/// pipeline end-to-end: workload stream generation, seed derivation,
/// trap handling, and sampling expansion. A diff here means the
/// simulator's observable behaviour changed — every table in the
/// paper reproduction shifts with it, so the change must be deliberate.
#[test]
fn golden_miss_counts_at_scale_2000() {
    let golden = [
        // (workload, cache KB, raw user misses, instructions)
        (Workload::MpegPlay, 16u64, 7653u64, 727_373u64),
        (Workload::Espresso, 4, 4124, 273_901),
    ];
    for (workload, kb, raw, instructions) in golden {
        let cfg = SystemConfig::cache(workload, dm4(kb))
            .with_components(ComponentSet::user_only())
            .with_scale(SCALE);
        let r = run_trial(&cfg, BASE(), BASE().derive("golden", 0));
        assert_eq!(
            r.raw_misses(Component::User),
            raw,
            "{workload:?} {kb}K raw user misses"
        );
        assert_eq!(
            r.instructions, instructions,
            "{workload:?} {kb}K instructions"
        );
        // user_only measurement: all observed misses belong to User.
        assert_eq!(r.total_misses(), raw as f64);
    }
}
