//! Differential suite for set-state tables and miss-schedule replay.
//!
//! On the cache/split burst path the engine may service a trapped burst
//! from per-set residency tables and, when the burst's entry conditions
//! and set-state signature recur, replay a recorded miss schedule with
//! zero trapset probes. Both layers are only legal because they are
//! *bit-identical* to stepwise servicing — same `TrialResult`, same
//! ring-event virtual timestamps, same counters (minus the schedule
//! bookkeeping and the victim memo, which the schedule path replaces).
//! This suite pins that equivalence for every simulator mode, serial
//! and parallel sweeps, and both kill switches:
//! `SystemConfig::with_miss_schedule(false)` and the `TW_SCHED=0`
//! environment knob.

use std::sync::Mutex;

use tapeworm::core::{CacheConfig, TlbSimConfig};
use tapeworm::obs::CounterId;
use tapeworm::sim::{
    run_sweep, run_trial_observed, ComponentSet, ObsConfig, SystemConfig, TrialResult,
};
use tapeworm::stats::SeedSeq;
use tapeworm::workload::Workload;

const SCALE: u64 = 20_000;

/// Serializes the tests that read or write `TW_SCHED`: the env var is
/// process-global and is sampled at system construction, so the
/// engagement assertions would misfire if another test flipped it
/// mid-run. (The *results* are env-independent by construction — that
/// is the point of this file — so the equivalence tests need no lock.)
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn dm(kb: u64) -> CacheConfig {
    CacheConfig::new(kb * 1024, 16, 1).expect("valid geometry")
}

/// One configuration per simulator mode, same shapes as the golden
/// determinism matrix. The miss-rich `user_only` cache config mirrors
/// the throughput gate, where replay matters most.
fn modes() -> Vec<(&'static str, SystemConfig)> {
    vec![
        (
            "cache",
            SystemConfig::cache(Workload::Espresso, dm(4)).with_scale(SCALE),
        ),
        (
            "cache-user-only",
            SystemConfig::cache(Workload::MpegPlay, dm(4))
                .with_components(ComponentSet::user_only())
                .with_scale(SCALE),
        ),
        (
            "split",
            SystemConfig::split(Workload::JpegPlay, dm(4), dm(4)).with_scale(SCALE),
        ),
        (
            "two-level",
            SystemConfig::two_level(Workload::Espresso, dm(1), dm(8)).with_scale(SCALE),
        ),
        (
            "tlb",
            SystemConfig::tlb(Workload::MpegPlay, TlbSimConfig::r3000()).with_scale(SCALE),
        ),
        (
            "buffer",
            SystemConfig::kernel_trace_buffer(Workload::MpegPlay, dm(4)).with_scale(SCALE),
        ),
    ]
}

fn flatten(cells: &[tapeworm::sim::TrialSummary]) -> Vec<&TrialResult> {
    cells.iter().flat_map(|c| c.results()).collect()
}

/// Counters that legitimately differ between scheduled and stepwise
/// servicing: the schedule bookkeeping itself and the victim memo,
/// which the set-state tables bypass entirely.
fn sched_bookkeeping(id: CounterId) -> bool {
    matches!(
        id,
        CounterId::SchedReplays
            | CounterId::SchedRecords
            | CounterId::SchedSigMisses
            | CounterId::VictimMemoHits
    )
}

/// The acceptance bar: for every simulator mode, a sweep with the miss
/// schedule enabled commits `TrialResult`s bit-identical to stepwise
/// burst servicing, at 1, 4 and 8 worker threads. (Metrics are
/// compared modulo the schedule bookkeeping, which legitimately
/// differs.)
#[test]
fn miss_schedule_is_bit_identical_to_stepwise() {
    for (label, cfg) in modes() {
        let stepwise_cfgs = vec![cfg.clone().with_miss_schedule(false)];
        let sched_cfgs = vec![cfg];
        let stepwise = run_sweep(&stepwise_cfgs, 4, SeedSeq::new(1994), 1);
        for threads in [1usize, 4, 8] {
            let sched = run_sweep(&sched_cfgs, 4, SeedSeq::new(1994), threads);
            assert_eq!(
                flatten(&stepwise),
                flatten(&sched),
                "{label}: miss-schedule servicing diverged at threads={threads}"
            );
            let (sm, bm) = (&stepwise[0].metrics(), &sched[0].metrics());
            for (id, sv) in sm.counters.iter() {
                if sched_bookkeeping(id) {
                    continue;
                }
                assert_eq!(
                    sv,
                    bm.counters.get(id),
                    "{label}: counter {id} diverged at threads={threads}"
                );
            }
            assert_eq!(sm.phases, bm.phases, "{label}: phase cycles diverged");
        }
    }
}

/// Replayed bursts emit ring events with recomputed *virtual*
/// timestamps (the cycle each trap would have been serviced at, had
/// the engine stepped). The observable event streams must therefore
/// match the stepwise run exactly — kind, cycle, thread and address.
#[test]
fn miss_schedule_preserves_ring_event_timestamps() {
    let base = SeedSeq::new(1994);
    let trial = base.derive("sched", 0).derive("trial", 0);
    for (label, cfg) in modes() {
        let stepwise = cfg.clone().with_miss_schedule(false);
        let (br, bmx) = run_trial_observed(&cfg, base, trial, ObsConfig::with_ring(4096));
        let (sr, smx) = run_trial_observed(&stepwise, base, trial, ObsConfig::with_ring(4096));
        assert_eq!(br, sr, "{label}: observed results diverged");
        assert_eq!(
            bmx.events_recorded, smx.events_recorded,
            "{label}: event counts diverged"
        );
        assert_eq!(bmx.events, smx.events, "{label}: ring events diverged");
    }
}

/// The schedule engages where it is supposed to — the miss-rich
/// gate-shaped config both records and replays schedules — and never
/// engages when disabled via the config knob.
#[test]
fn miss_schedule_engages_exactly_where_expected() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    std::env::remove_var("TW_SCHED");
    let base = SeedSeq::new(1994);
    let trial = base.derive("sched", 0).derive("trial", 0);

    let cfg = SystemConfig::cache(Workload::MpegPlay, dm(4))
        .with_components(ComponentSet::user_only())
        .with_scale(SCALE);
    let (_, m) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
    assert!(
        m.counters.get(CounterId::SchedRecords) > 0,
        "miss-rich config never recorded a schedule"
    );
    assert!(
        m.counters.get(CounterId::SchedReplays) > 0,
        "miss-rich config never replayed a schedule"
    );

    let off = cfg.with_miss_schedule(false);
    let (_, m) = run_trial_observed(&off, base, trial, ObsConfig::default());
    assert_eq!(m.counters.get(CounterId::SchedRecords), 0, "disabled");
    assert_eq!(m.counters.get(CounterId::SchedReplays), 0, "disabled");
    assert_eq!(m.counters.get(CounterId::SchedSigMisses), 0, "disabled");
}

/// `TW_SCHED=0` is the no-recompile kill switch: it restores the
/// pre-schedule engine (observable in the counters) without perturbing
/// any result, mirroring `TW_FAST=0` and `TW_BATCH=0`.
#[test]
fn tw_sched_env_knob_restores_stepwise_servicing() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    let base = SeedSeq::new(1994);
    let trial = base.derive("sched", 0).derive("trial", 0);
    let cfg = SystemConfig::cache(Workload::MpegPlay, dm(4))
        .with_components(ComponentSet::user_only())
        .with_scale(SCALE);

    std::env::remove_var("TW_SCHED");
    let (on_result, on_metrics) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
    assert!(on_metrics.counters.get(CounterId::SchedRecords) > 0);

    std::env::set_var("TW_SCHED", "0");
    let (off_result, off_metrics) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
    std::env::remove_var("TW_SCHED");

    assert_eq!(off_metrics.counters.get(CounterId::SchedRecords), 0);
    assert_eq!(off_metrics.counters.get(CounterId::SchedReplays), 0);
    assert_eq!(on_result, off_result, "TW_SCHED=0 perturbed the result");
    // Any value other than "0" leaves the schedule on.
    std::env::set_var("TW_SCHED", "1");
    let (_, again) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
    std::env::remove_var("TW_SCHED");
    assert!(again.counters.get(CounterId::SchedRecords) > 0);
}
