//! Differential suite for batched miss handling.
//!
//! When a chunk's clean-span scan shows a trap-dense stretch, the
//! engine may service the whole stretch in one coalesced handler pass
//! (memoized victim selection, merged trap-set range ops) instead of
//! bouncing trap-by-trap between simulator and kernel. Like the
//! resident-run fast path, the batch is only legal because it is
//! *bit-identical* to stepwise servicing — same `TrialResult`, same
//! ring-event timestamps, same counters (minus the batch bookkeeping
//! itself). This suite pins that equivalence for every simulator mode,
//! serial and parallel sweeps, and both kill switches:
//! `SystemConfig::with_miss_batch(false)` and the `TW_BATCH=0`
//! environment knob.

use std::sync::Mutex;

use tapeworm::core::{CacheConfig, TlbSimConfig};
use tapeworm::obs::CounterId;
use tapeworm::sim::{
    run_sweep, run_trial_observed, ComponentSet, ObsConfig, SystemConfig, TrialResult,
};
use tapeworm::stats::SeedSeq;
use tapeworm::workload::Workload;

const SCALE: u64 = 20_000;

/// Serializes the tests that read or write `TW_BATCH`: the env var is
/// process-global and is sampled at system construction, so the
/// engagement assertions would misfire if another test flipped it
/// mid-run. (The *results* are env-independent by construction — that
/// is the point of this file — so the equivalence tests need no lock.)
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn dm(kb: u64) -> CacheConfig {
    CacheConfig::new(kb * 1024, 16, 1).expect("valid geometry")
}

/// One configuration per simulator mode, same shapes as the golden
/// determinism matrix. The miss-rich `user_only` cache config mirrors
/// the throughput gate, where batching matters most.
fn modes() -> Vec<(&'static str, SystemConfig)> {
    vec![
        (
            "cache",
            SystemConfig::cache(Workload::Espresso, dm(4)).with_scale(SCALE),
        ),
        (
            "cache-user-only",
            SystemConfig::cache(Workload::MpegPlay, dm(4))
                .with_components(ComponentSet::user_only())
                .with_scale(SCALE),
        ),
        (
            "split",
            SystemConfig::split(Workload::JpegPlay, dm(4), dm(4)).with_scale(SCALE),
        ),
        (
            "two-level",
            SystemConfig::two_level(Workload::Espresso, dm(1), dm(8)).with_scale(SCALE),
        ),
        (
            "tlb",
            SystemConfig::tlb(Workload::MpegPlay, TlbSimConfig::r3000()).with_scale(SCALE),
        ),
        (
            "buffer",
            SystemConfig::kernel_trace_buffer(Workload::MpegPlay, dm(4)).with_scale(SCALE),
        ),
    ]
}

fn flatten(cells: &[tapeworm::sim::TrialSummary]) -> Vec<&TrialResult> {
    cells.iter().flat_map(|c| c.results()).collect()
}

/// Counters that legitimately differ between batched and stepwise
/// servicing: the batch bookkeeping itself, and the fast-path tallies
/// (the burst hands different residues to the clean-run batcher).
fn batch_bookkeeping(id: CounterId) -> bool {
    matches!(
        id,
        CounterId::MissBatchFlushes
            | CounterId::VictimMemoHits
            | CounterId::FastRuns
            | CounterId::FastWords
            | CounterId::SchedReplays
            | CounterId::SchedRecords
            | CounterId::SchedSigMisses
    )
}

/// The acceptance bar: for every simulator mode, a sweep with miss
/// batching enabled commits `TrialResult`s bit-identical to stepwise
/// servicing, at 1, 4 and 8 worker threads. (Metrics are compared
/// modulo the batch bookkeeping, which legitimately differs.)
#[test]
fn miss_batch_is_bit_identical_to_stepwise() {
    for (label, cfg) in modes() {
        let stepwise_cfgs = vec![cfg.clone().with_miss_batch(false)];
        let batched_cfgs = vec![cfg];
        let stepwise = run_sweep(&stepwise_cfgs, 4, SeedSeq::new(1994), 1);
        for threads in [1usize, 4, 8] {
            let batched = run_sweep(&batched_cfgs, 4, SeedSeq::new(1994), threads);
            assert_eq!(
                flatten(&stepwise),
                flatten(&batched),
                "{label}: batched miss handling diverged at threads={threads}"
            );
            let (sm, bm) = (&stepwise[0].metrics(), &batched[0].metrics());
            for (id, sv) in sm.counters.iter() {
                if batch_bookkeeping(id) {
                    continue;
                }
                assert_eq!(
                    sv,
                    bm.counters.get(id),
                    "{label}: counter {id} diverged at threads={threads}"
                );
            }
            assert_eq!(sm.phases, bm.phases, "{label}: phase cycles diverged");
        }
    }
}

/// Bursts record ring events with *virtual* timestamps (the cycle the
/// trap would have been serviced at, had the engine stepped). The
/// observable event streams must therefore match the stepwise run
/// exactly — kind, cycle, thread and address — not just the trial
/// results.
#[test]
fn miss_batch_preserves_ring_event_timestamps() {
    let base = SeedSeq::new(1994);
    let trial = base.derive("batch", 0).derive("trial", 0);
    for (label, cfg) in modes() {
        let stepwise = cfg.clone().with_miss_batch(false);
        let (br, bmx) = run_trial_observed(&cfg, base, trial, ObsConfig::with_ring(4096));
        let (sr, smx) = run_trial_observed(&stepwise, base, trial, ObsConfig::with_ring(4096));
        assert_eq!(br, sr, "{label}: observed results diverged");
        assert_eq!(
            bmx.events_recorded, smx.events_recorded,
            "{label}: event counts diverged"
        );
        assert_eq!(bmx.events, smx.events, "{label}: ring events diverged");
        let cycles: Vec<u64> = bmx.events.iter().map(|e| e.cycle).collect();
        assert!(
            cycles.windows(2).all(|w| w[0] <= w[1]),
            "{label}: burst virtual timestamps out of order"
        );
    }
}

/// The batch engages where it is supposed to — the miss-rich gate-shaped
/// config flushes coalesced bursts — and never engages when disabled via
/// the config knob.
#[test]
fn miss_batch_engages_exactly_where_expected() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    std::env::remove_var("TW_BATCH");
    let base = SeedSeq::new(1994);
    let trial = base.derive("batch", 0).derive("trial", 0);

    let cfg = SystemConfig::cache(Workload::MpegPlay, dm(4))
        .with_components(ComponentSet::user_only())
        .with_scale(SCALE);
    let (_, m) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
    assert!(
        m.counters.get(CounterId::MissBatchFlushes) > 0,
        "miss-rich config never flushed a batch"
    );
    // The victim memo only services bursts when the miss schedule is
    // not short-circuiting them, so pin its engagement with the
    // schedule disabled.
    let memo_cfg = cfg.clone().with_miss_schedule(false);
    let (_, m) = run_trial_observed(&memo_cfg, base, trial, ObsConfig::default());
    assert!(
        m.counters.get(CounterId::VictimMemoHits) > 0,
        "batch never reused a memoized victim"
    );

    let off = cfg.with_miss_batch(false);
    let (_, m) = run_trial_observed(&off, base, trial, ObsConfig::default());
    assert_eq!(
        m.counters.get(CounterId::MissBatchFlushes),
        0,
        "disabled batch still flushed"
    );
}

/// `TW_BATCH=0` is the no-recompile kill switch: it forces stepwise
/// servicing (observable in the counters) without perturbing any
/// result, mirroring `TW_FAST=0` for the resident-run fast path.
#[test]
fn tw_batch_env_knob_forces_stepwise_servicing() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    let base = SeedSeq::new(1994);
    let trial = base.derive("batch", 0).derive("trial", 0);
    let cfg = SystemConfig::cache(Workload::MpegPlay, dm(4))
        .with_components(ComponentSet::user_only())
        .with_scale(SCALE);

    std::env::remove_var("TW_BATCH");
    let (on_result, on_metrics) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
    assert!(on_metrics.counters.get(CounterId::MissBatchFlushes) > 0);

    std::env::set_var("TW_BATCH", "0");
    let (off_result, off_metrics) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
    std::env::remove_var("TW_BATCH");

    assert_eq!(off_metrics.counters.get(CounterId::MissBatchFlushes), 0);
    assert_eq!(on_result, off_result, "TW_BATCH=0 perturbed the result");
    // Any value other than "0" leaves batching on.
    std::env::set_var("TW_BATCH", "1");
    let (_, again) = run_trial_observed(&cfg, base, trial, ObsConfig::default());
    std::env::remove_var("TW_BATCH");
    assert!(again.counters.get(CounterId::MissBatchFlushes) > 0);
}
