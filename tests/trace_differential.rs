//! Differential validation: trap-driven Tapeworm versus the Pixie +
//! Cache2000 trace-driven pipeline over the identical reference
//! stream (Table 6, the "From Traces" column).
//!
//! The paper validated Tapeworm by comparing its user-component miss
//! counts against traces of the same workloads; with virtual indexing,
//! no set sampling and FIFO replacement on both sides, the two
//! simulators are computing the same function and must agree *exactly*
//! — not approximately. Any drift means one engine's cache model has
//! regressed.
//!
//! Multi-task workloads are skipped the same way the paper's tooling
//! skipped them: Pixie can only trace a single task, so
//! `run_trace_driven` refuses them and that refusal is itself asserted.

use tapeworm::core::{CacheConfig, Indexing};
use tapeworm::machine::Component;
use tapeworm::sim::compare::run_trace_driven;
use tapeworm::sim::{run_trial, ComponentSet, SystemConfig};
use tapeworm::stats::SeedSeq;
use tapeworm::trace::TracePolicy;
use tapeworm::workload::Workload;

const SCALE: u64 = 20_000;

fn base() -> SeedSeq {
    SeedSeq::new(1994)
}

fn config(w: Workload, cache: CacheConfig) -> SystemConfig {
    SystemConfig::cache(w, cache)
        .with_components(ComponentSet::user_only())
        .with_scale(SCALE)
}

/// Every single-task workload, at three cache sizes, agrees with the
/// trace-driven baseline to the exact miss count.
#[test]
fn every_traceable_workload_agrees_exactly_with_cache2000() {
    let mut validated = 0usize;
    let mut skipped = Vec::new();
    for w in Workload::ALL {
        for kb in [1u64, 4, 16] {
            let cache = CacheConfig::new(kb * 1024, 16, 1)
                .expect("valid geometry")
                .with_indexing(Indexing::Virtual);
            let cfg = config(w, cache);
            let tr = match run_trace_driven(&cfg, cache, TracePolicy::Fifo, base()) {
                Ok(tr) => tr,
                Err(_) => {
                    // Pixie's single-task limitation; every size of a
                    // multi-task workload must refuse consistently.
                    skipped.push(w);
                    continue;
                }
            };
            let tw = run_trial(&cfg, base(), base().derive("differential", kb));
            assert_eq!(
                tw.misses(Component::User) as u64,
                tr.misses,
                "{w} @ {kb}K: trap-driven and trace-driven miss counts diverged"
            );
            assert_eq!(
                tw.raw_misses(Component::User),
                tr.misses,
                "{w} @ {kb}K: unsampled raw count must equal the estimate"
            );
            validated += 1;
        }
    }
    assert!(
        validated >= 4 * 3,
        "expected at least four single-task workloads to validate, got {validated}/3 sizes"
    );
    // Each skipped workload refused at all three sizes, or not at all.
    assert_eq!(
        skipped.len() % 3,
        0,
        "inconsistent Pixie refusals: {skipped:?}"
    );
}

/// The agreement is independent of the trial seed: virtual indexing
/// without sampling removes every source of run-to-run variance, so
/// any trial of the sweep reproduces the trace-validated count.
#[test]
fn agreement_is_trial_seed_independent() {
    let cache = CacheConfig::new(4 * 1024, 16, 1)
        .expect("valid geometry")
        .with_indexing(Indexing::Virtual);
    let cfg = config(Workload::Espresso, cache);
    let tr = run_trace_driven(&cfg, cache, TracePolicy::Fifo, base()).expect("single-task");
    for trial in 0..3u64 {
        let tw = run_trial(&cfg, base(), base().derive("trial", trial));
        assert_eq!(
            tw.misses(Component::User) as u64,
            tr.misses,
            "trial {trial}: virtual-indexed unsampled runs must all agree"
        );
    }
}
