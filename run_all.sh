#!/usr/bin/env bash
# Regenerates every table/figure of the paper plus all extension
# experiments, writing each binary's output under results/.
#
# Environment knobs:
#   TW_SCALE   instruction divisor vs. the paper's runs (default 100)
#   TW_SEED    base seed (default 1994)
#   TW_THREADS trial-level parallelism (default: all cores)
set -euo pipefail
cd "$(dirname "$0")"

./ci.sh

mkdir -p results
cargo build --release -p tapeworm-bench

echo "=== perf_throughput (full matrix) ==="
./target/release/perf_throughput | tee results/perf_throughput.txt
echo

BINS=(
  fig2_slowdowns fig3_configs fig4_dilation
  tab4_workloads tab5_cycles tab6_components tab7_variation
  tab8_sampling_variation tab9_page_allocation tab10_variation_removed
  tab11_code_distribution tab12_privileged_ops
  breakeven bias_masked_traps
  ablation_cost_models ablation_stackdist
  ext_multilevel ext_dcache ext_trace_buffer ext_tlb_costs
  kessler_model calibrate chaos_sweep
)

for bin in "${BINS[@]}"; do
  echo "=== $bin ==="
  ./target/release/"$bin" | tee "results/$bin.txt"
  echo
done

echo "All experiment outputs written to results/"
